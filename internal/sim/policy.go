// Policies: the decision side of the simulator. Each axis — admission,
// batching, routing — is an interface with at least two swappable
// implementations, selected by a spec string in the scenario
// ("token-bucket?rate=2200,burst=500" in the spirit of the backend
// registry's engine specs). Policies must be pure functions of virtual time
// and observed state: no wall clock, no private randomness — that is what
// keeps runs byte-reproducible.
package sim

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"photofourier/internal/pool"
)

// Admission decides whether an arrival enters the system or is shed.
type Admission interface {
	Name() string
	// Admit sees the arrival time and the fleet's total queued+in-flight
	// samples.
	Admit(now int64, queued int) bool
}

// AcceptAll admits everything — the open-loop baseline.
type AcceptAll struct{}

func (AcceptAll) Name() string                     { return "accept-all" }
func (AcceptAll) Admit(now int64, queued int) bool { return true }

// TokenBucket sheds load beyond a sustained rate with a burst allowance:
// tokens refill at Rate per second up to Burst, one arrival costs one
// token, an empty bucket sheds. Refill is computed lazily from virtual
// time, so the policy is deterministic.
type TokenBucket struct {
	Rate   float64 // tokens per second
	Burst  float64 // bucket capacity
	tokens float64
	last   int64
	primed bool
}

func (b *TokenBucket) Name() string {
	return fmt.Sprintf("token-bucket?rate=%g,burst=%g", b.Rate, b.Burst)
}

func (b *TokenBucket) Admit(now int64, queued int) bool {
	if !b.primed {
		b.tokens = b.Burst
		b.last = now
		b.primed = true
	}
	b.tokens += float64(now-b.last) / 1e9 * b.Rate
	b.last = now
	if b.tokens > b.Burst {
		b.tokens = b.Burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Batching decides how long the oldest queued request may wait for
// co-batching before its worker closes the batch (a batch also closes
// immediately at MaxBatch width).
type Batching interface {
	Name() string
	// CloseDelay returns the co-batching window in virtual ns given the
	// worker's current queue depth (>= 1).
	CloseDelay(depth int) int64
}

// FixedDelay always waits the same window — serve.Options.MaxDelay's twin.
type FixedDelay struct {
	Delay time.Duration
}

func (d FixedDelay) Name() string               { return fmt.Sprintf("fixed?delay=%s", d.Delay) }
func (d FixedDelay) CloseDelay(depth int) int64 { return d.Delay.Nanoseconds() }

// AdaptiveDelay targets a queue-depth setpoint: at depth == Setpoint the
// window is Base; shallower queues wait proportionally longer (collect more
// co-batching), deeper queues close faster (drain the backlog), always
// clamped to [Min, Max].
type AdaptiveDelay struct {
	Base     time.Duration
	Min, Max time.Duration
	Setpoint int
}

func (d AdaptiveDelay) Name() string {
	return fmt.Sprintf("adaptive?base=%s,min=%s,max=%s,setpoint=%d", d.Base, d.Min, d.Max, d.Setpoint)
}

func (d AdaptiveDelay) CloseDelay(depth int) int64 {
	if depth < 1 {
		depth = 1
	}
	w := int64(float64(d.Base.Nanoseconds()) * float64(d.Setpoint) / float64(depth))
	if min := d.Min.Nanoseconds(); w < min {
		w = min
	}
	if max := d.Max.Nanoseconds(); w > max {
		w = max
	}
	return w
}

// WorkerView is the routing policy's per-worker snapshot.
type WorkerView struct {
	ID   int
	Live bool
	// Queued and Inflight are the worker's waiting and executing sample
	// counts.
	Queued, Inflight int
	// EWMANs and ConsecFaults feed the pool package's device health score.
	EWMANs       float64
	ConsecFaults int
}

// HealthScore is the worker's scheduling score — pool.HealthScore, the
// exact ranking the device pool's dispatcher uses on real DeviceHealth
// rows (lower is healthier; an unmeasured worker scores 0 and is tried
// first).
func (v WorkerView) HealthScore() float64 {
	return pool.HealthScore(v.EWMANs, v.ConsecFaults)
}

// Routing picks the worker for one admitted (or re-dispatched) request.
type Routing interface {
	Name() string
	// Route returns the chosen worker's ID, or -1 when no live worker
	// exists.
	Route(req *Request, workers []WorkerView) int
}

// RoundRobin rotates over live workers, blind to load and health.
type RoundRobin struct {
	next int
}

func (r *RoundRobin) Name() string { return "round-robin" }

func (r *RoundRobin) Route(req *Request, workers []WorkerView) int {
	n := len(workers)
	for i := 0; i < n; i++ {
		w := workers[(r.next+i)%n]
		if w.Live {
			r.next = (w.ID + 1) % n
			return w.ID
		}
	}
	return -1
}

// LeastLoaded picks the live worker minimizing occupancy weighted by the
// pool health score — the simulator twin of the device pool's
// healthiest-first scored dispatch: (queued + in-flight + 1) x
// (HealthScore + 1), ties to the lowest ID.
type LeastLoaded struct{}

func (LeastLoaded) Name() string { return "least-loaded" }

func (LeastLoaded) Route(req *Request, workers []WorkerView) int {
	best, bestScore := -1, 0.0
	for _, w := range workers {
		if !w.Live {
			continue
		}
		score := float64(w.Queued+w.Inflight+1) * (w.HealthScore() + 1)
		if best < 0 || score < bestScore {
			best, bestScore = w.ID, score
		}
	}
	return best
}

// policyParams splits "name?k=v,k=v" into its name and key/value pairs.
func policyParams(spec string) (name string, params map[string]string, err error) {
	name, rest, has := strings.Cut(spec, "?")
	params = map[string]string{}
	if !has {
		return name, params, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" || v == "" {
			return "", nil, fmt.Errorf("sim: policy spec %q: parameter %q is not key=value", spec, kv)
		}
		params[k] = v
	}
	return name, params, nil
}

func paramFloat(params map[string]string, key string, def float64) (float64, error) {
	v, ok := params[key]
	if !ok {
		return def, nil
	}
	return strconv.ParseFloat(v, 64)
}

func paramDuration(params map[string]string, key string, def time.Duration) (time.Duration, error) {
	v, ok := params[key]
	if !ok {
		return def, nil
	}
	return time.ParseDuration(v)
}

func paramInt(params map[string]string, key string, def int) (int, error) {
	v, ok := params[key]
	if !ok {
		return def, nil
	}
	return strconv.Atoi(v)
}

func rejectUnknown(kind, spec string, params map[string]string, known ...string) error {
	for k := range params {
		found := false
		for _, ok := range known {
			if k == ok {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("sim: %s spec %q: unknown parameter %q", kind, spec, k)
		}
	}
	return nil
}

// BuildAdmission parses an admission policy spec: "accept-all" or
// "token-bucket?rate=F,burst=F" (rate defaults to 1000/s, burst to rate/10).
func BuildAdmission(spec string) (Admission, error) {
	name, params, err := policyParams(spec)
	if err != nil {
		return nil, err
	}
	switch name {
	case "", "accept-all":
		if err := rejectUnknown("admission", spec, params); err != nil {
			return nil, err
		}
		return AcceptAll{}, nil
	case "token-bucket":
		if err := rejectUnknown("admission", spec, params, "rate", "burst"); err != nil {
			return nil, err
		}
		rate, err := paramFloat(params, "rate", 1000)
		if err != nil {
			return nil, fmt.Errorf("sim: admission spec %q: %w", spec, err)
		}
		burst, err := paramFloat(params, "burst", rate/10)
		if err != nil {
			return nil, fmt.Errorf("sim: admission spec %q: %w", spec, err)
		}
		if rate <= 0 || burst < 1 {
			return nil, fmt.Errorf("sim: admission spec %q: rate must be > 0 and burst >= 1", spec)
		}
		return &TokenBucket{Rate: rate, Burst: burst}, nil
	}
	return nil, fmt.Errorf("sim: unknown admission policy %q (have accept-all, token-bucket)", spec)
}

// BuildBatching parses a batching policy spec: "fixed?delay=D" or
// "adaptive?base=D,min=D,max=D,setpoint=N".
func BuildBatching(spec string) (Batching, error) {
	name, params, err := policyParams(spec)
	if err != nil {
		return nil, err
	}
	switch name {
	case "", "fixed":
		if err := rejectUnknown("batching", spec, params, "delay"); err != nil {
			return nil, err
		}
		d, err := paramDuration(params, "delay", 2*time.Millisecond)
		if err != nil {
			return nil, fmt.Errorf("sim: batching spec %q: %w", spec, err)
		}
		if d < 0 {
			return nil, fmt.Errorf("sim: batching spec %q: delay must be >= 0", spec)
		}
		return FixedDelay{Delay: d}, nil
	case "adaptive":
		if err := rejectUnknown("batching", spec, params, "base", "min", "max", "setpoint"); err != nil {
			return nil, err
		}
		base, err := paramDuration(params, "base", 2*time.Millisecond)
		if err == nil {
			var min, max time.Duration
			min, err = paramDuration(params, "min", 250*time.Microsecond)
			if err == nil {
				max, err = paramDuration(params, "max", 8*time.Millisecond)
				if err == nil {
					var sp int
					sp, err = paramInt(params, "setpoint", 6)
					if err == nil {
						if base <= 0 || min < 0 || max < min || sp < 1 {
							return nil, fmt.Errorf("sim: batching spec %q: want base > 0, 0 <= min <= max, setpoint >= 1", spec)
						}
						return AdaptiveDelay{Base: base, Min: min, Max: max, Setpoint: sp}, nil
					}
				}
			}
		}
		return nil, fmt.Errorf("sim: batching spec %q: %w", spec, err)
	}
	return nil, fmt.Errorf("sim: unknown batching policy %q (have fixed, adaptive)", spec)
}

// BuildRouting parses a routing policy spec: "round-robin" or
// "least-loaded".
func BuildRouting(spec string) (Routing, error) {
	name, params, err := policyParams(spec)
	if err != nil {
		return nil, err
	}
	if err := rejectUnknown("routing", spec, params); err != nil {
		return nil, err
	}
	switch name {
	case "round-robin":
		return &RoundRobin{}, nil
	case "", "least-loaded":
		return LeastLoaded{}, nil
	}
	return nil, fmt.Errorf("sim: unknown routing policy %q (have round-robin, least-loaded)", spec)
}
