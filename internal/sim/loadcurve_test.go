package sim

import (
	"math"
	"math/rand/v2"
	"testing"
)

func curve(seed uint64, harmonics int) LoadCurve {
	return NewLoadCurve(rand.New(rand.NewPCG(seed, 0)), harmonics)
}

func TestLoadCurveDeterministic(t *testing.T) {
	a := curve(42, 4)
	b := curve(42, 4)
	for i := 0; i < 1000; i++ {
		x := float64(i) / 1000
		if a.At(x) != b.At(x) {
			t.Fatalf("same seed diverged at x=%g: %g vs %g", x, a.At(x), b.At(x))
		}
	}
	c := curve(43, 4)
	same := true
	for i := 0; i < 1000 && same; i++ {
		x := float64(i) / 1000
		same = a.At(x) == c.At(x)
	}
	if same {
		t.Fatal("different seeds produced an identical curve")
	}
}

func TestLoadCurveClamped(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		c := curve(seed, 4)
		for i := 0; i < 500; i++ {
			x := float64(i) / 500
			v := c.At(x)
			if v < 0 || v > 1 {
				t.Fatalf("seed %d: At(%g) = %g outside [0,1]", seed, x, v)
			}
		}
	}
}

func TestLoadCurvePeriodOne(t *testing.T) {
	c := curve(7, 4)
	for i := 0; i < 200; i++ {
		x := float64(i) / 200
		if d := math.Abs(c.At(x) - c.At(x+1)); d > 1e-9 {
			t.Fatalf("At(%g) and At(%g) differ by %g; curve should have period 1", x, x+1, d)
		}
	}
}

// TestLoadCurveDiurnalMean checks the diurnal shape: the curve is centered on
// 0.5, so its mean over a full day stays near 0.5 (clamping skews individual
// seeds, hence the tolerance), while single seeds still swing well away from
// the mean (it is a load curve, not a constant).
func TestLoadCurveDiurnalMean(t *testing.T) {
	const steps = 2000
	swings := 0
	for seed := uint64(0); seed < 20; seed++ {
		c := curve(seed, 4)
		sum, lo, hi := 0.0, math.Inf(1), math.Inf(-1)
		for i := 0; i < steps; i++ {
			v := c.At(float64(i) / steps)
			sum += v
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		mean := sum / steps
		if math.Abs(mean-0.5) > 0.12 {
			t.Fatalf("seed %d: day mean %g too far from 0.5", seed, mean)
		}
		if hi-lo > 0.2 {
			swings++
		}
	}
	if swings < 10 {
		t.Fatalf("only %d/20 seeds swing by > 0.2 over the day; curves look flat", swings)
	}
}
