// Package fault is the deterministic, seedable fault-injection layer of the
// PhotoFourier substrate model. The paper's accelerator is real analog
// hardware — detectors misfire, laser power drifts between calibration
// probes, ADC channels stick, aperture rows die, whole devices go down —
// and the serving stack above it (internal/core, internal/jtc,
// internal/serve) carries recovery machinery for exactly those modes. This
// package supplies the misbehavior: an Injector parsed from a compact spec
// string (carried by the backend registry's "fault"/"faultseed" keys, so
// every fault scenario is a reproducible engine spec) draws every fault
// decision from a splitmix64 hash of (seed, call, term, group, attempt) —
// deterministic, independent of goroutine scheduling, and identical across
// the planned, unplanned, and batch-major execution paths for a matching
// call sequence.
//
// Spec grammar (the value of the "fault" engine-spec key): one or more
// mode:param pairs separated by ';':
//
//	shot:RATE      per-readout transient misfire probability (corrupted or
//	               zeroed correlation plane; detected by the per-shot guard
//	               and re-run, see GuardPlane)
//	drift:RATE     multiplicative laser-power drift per engine call; the
//	               residual gain since the last calibration probe is
//	               1 + RATE*(call - probeEpoch)
//	probe:N        calibration probe interval in engine calls (default 32):
//	               each probe re-references the drift gain to 1
//	retries:N      bounded shot-retry budget per readout (default 3)
//	stuckbit:B     ADC stuck-at-1 bit index (repeatable; bits OR together)
//	deadrow:I      dead aperture tile slot (repeatable); the batch packer
//	               schedules around quarantined slots
//	outage:CALL    full device outage from engine call CALL on (calls are
//	               1-based; outage:1 is a device that never worked)
//	none           explicitly no faults (same as an empty spec)
//
// e.g. "accelerator-noisy?fault=shot:1e-3;drift:5e-5,faultseed=7".
package fault

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// ErrDeviceFault marks an unrecoverable device-level failure: a shot
// misfire that persisted through the retry budget, a full device outage, or
// a quarantine that leaves no usable aperture. It is the canonical sentinel
// of the whole stack — internal/core re-exports it, and the root facade
// re-exports that — defined here so internal/jtc (which internal/core
// imports) can wrap it without an import cycle. Test with errors.Is.
var ErrDeviceFault = errors.New("device fault")

// Kind identifies one transient shot-corruption mode.
type Kind int

const (
	// KindNaN poisons correlation-plane samples with NaN (an ADC conversion
	// glitch).
	KindNaN Kind = iota
	// KindSpike adds an off-scale spike far above the ADC envelope (a laser
	// power flash).
	KindSpike
	// KindZero zeroes the plane (a dropped shot: the detector array read
	// out before any charge accumulated).
	KindZero
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindNaN:
		return "nan"
	case KindSpike:
		return "spike"
	case KindZero:
		return "zero"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DefaultProbeInterval is the calibration probe cadence (engine calls)
// when the spec sets drift without a probe interval.
const DefaultProbeInterval = 32

// DefaultShotRetries is the bounded per-readout retry budget when the spec
// sets shot faults without a retries override.
const DefaultShotRetries = 3

// Counters is a point-in-time snapshot of an injector's fault and recovery
// accounting (all monotonic).
type Counters struct {
	// ShotFaults counts injected transient shot misfires.
	ShotFaults uint64
	// ShotRetries counts shots re-executed after a guard detection (each
	// also advances jtc.Shots through the caller).
	ShotRetries uint64
	// Recalibrations counts drift calibration probes crossed: every
	// ProbeInterval engine calls, the gain reference re-zeroes.
	Recalibrations uint64
	// Outages counts engine calls refused because the device was down.
	Outages uint64
}

// Injector is one device's deterministic fault model. The configuration
// fields are immutable after Parse; the counters are internally atomic, so
// an Injector is safe for concurrent use by every execution path of its
// engine.
type Injector struct {
	// Seed keys every fault draw (the "faultseed" spec key).
	Seed int64
	// ShotRate is the per-readout transient misfire probability.
	ShotRate float64
	// DriftRate is the multiplicative laser-power drift per engine call.
	DriftRate float64
	// ProbeInterval is the calibration probe cadence in engine calls.
	ProbeInterval uint64
	// MaxShotRetries bounds how often one readout's misfire may be re-run
	// before the shot is declared dead (ErrDeviceFault).
	MaxShotRetries int
	// StuckBits is the ADC stuck-at-1 bit mask.
	StuckBits uint64
	// OutageAt is the 1-based engine call index from which the device is
	// permanently down (0 = never).
	OutageAt uint64
	// Dead lists quarantined aperture tile slots (sorted, deduplicated).
	Dead []int

	spec string // canonical source spec, for String()

	shotFaults  atomic.Uint64
	shotRetries atomic.Uint64
	outages     atomic.Uint64
	probedEpoch atomic.Uint64 // highest drift probe epoch observed
}

// Parse builds an Injector from a fault spec ("shot:1e-3;drift:5e-5") and
// seed. An empty spec or "none" returns (nil, nil): no injector, no hooks.
func Parse(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	inj := &Injector{
		Seed:           seed,
		ProbeInterval:  DefaultProbeInterval,
		MaxShotRetries: DefaultShotRetries,
		spec:           spec,
	}
	deadSeen := map[int]bool{}
	for _, item := range strings.Split(spec, ";") {
		mode, param, ok := strings.Cut(item, ":")
		if !ok || mode == "" || param == "" {
			return nil, fmt.Errorf("fault: entry %q in %q (want mode:param)", item, spec)
		}
		switch mode {
		case "shot":
			rate, err := parseRate(mode, param)
			if err != nil {
				return nil, err
			}
			inj.ShotRate = rate
		case "drift":
			rate, err := parseRate(mode, param)
			if err != nil {
				return nil, err
			}
			inj.DriftRate = rate
		case "probe":
			n, err := strconv.ParseUint(param, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fault: probe interval %q must be a positive integer", param)
			}
			inj.ProbeInterval = n
		case "retries":
			n, err := strconv.Atoi(param)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("fault: retry budget %q must be a non-negative integer", param)
			}
			inj.MaxShotRetries = n
		case "stuckbit":
			b, err := strconv.Atoi(param)
			if err != nil || b < 0 || b > 31 {
				return nil, fmt.Errorf("fault: stuck bit %q out of range [0,31]", param)
			}
			inj.StuckBits |= uint64(1) << b
		case "deadrow":
			r, err := strconv.Atoi(param)
			if err != nil || r < 0 {
				return nil, fmt.Errorf("fault: dead row %q must be a non-negative integer", param)
			}
			if !deadSeen[r] {
				deadSeen[r] = true
				inj.Dead = append(inj.Dead, r)
			}
		case "outage":
			n, err := strconv.ParseUint(param, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fault: outage call %q must be a positive integer (calls are 1-based)", param)
			}
			inj.OutageAt = n
		default:
			return nil, fmt.Errorf("fault: unknown mode %q in %q (have shot, drift, probe, retries, stuckbit, deadrow, outage)", mode, spec)
		}
	}
	sort.Ints(inj.Dead)
	return inj, nil
}

func parseRate(mode, param string) (float64, error) {
	rate, err := strconv.ParseFloat(param, 64)
	if err != nil || math.IsNaN(rate) || rate < 0 || rate > 1 {
		return 0, fmt.Errorf("fault: %s rate %q out of range [0,1]", mode, param)
	}
	return rate, nil
}

// String returns the source fault spec.
func (inj *Injector) String() string { return inj.spec }

// Active reports whether any fault mode is configured at a non-zero level.
// Engines gate every hook on it, so a zero-rate injector stays bit-identical
// to no injector at all.
func (inj *Injector) Active() bool {
	return inj != nil && (inj.ShotRate > 0 || inj.DriftRate > 0 || inj.StuckBits != 0 ||
		inj.OutageAt > 0 || len(inj.Dead) > 0)
}

// DeadSlots returns the quarantined aperture tile slots (nil-safe;
// read-only).
func (inj *Injector) DeadSlots() []int {
	if inj == nil {
		return nil
	}
	return inj.Dead
}

// Counters returns a snapshot of the injector's fault accounting.
func (inj *Injector) Counters() Counters {
	if inj == nil {
		return Counters{}
	}
	return Counters{
		ShotFaults:     inj.shotFaults.Load(),
		ShotRetries:    inj.shotRetries.Load(),
		Recalibrations: inj.probedEpoch.Load() / max(inj.ProbeInterval, 1),
		Outages:        inj.outages.Load(),
	}
}

// NoteShotFault records one injected misfire.
func (inj *Injector) NoteShotFault() { inj.shotFaults.Add(1) }

// NoteShotRetry records one guard-triggered shot re-execution.
func (inj *Injector) NoteShotRetry() { inj.shotRetries.Add(1) }

// NoteOutage records one refused engine call.
func (inj *Injector) NoteOutage() { inj.outages.Add(1) }

// mix64 is the splitmix64 finalizer — the same bijective hash the engine's
// readout-noise substreams use, so fault draws are order-independent and
// reproducible.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// draw hashes the full fault coordinate. The leading tag decorrelates fault
// draws from the engine's noise substreams, which hash the same seed.
func (inj *Injector) draw(tag, call uint64, term, group, attempt int) uint64 {
	h := mix64(uint64(inj.Seed) ^ tag)
	h = mix64(h ^ call)
	h = mix64(h ^ uint64(term)<<32 ^ uint64(group))
	return mix64(h ^ uint64(attempt))
}

const (
	tagShot    = 0x73686f74 // "shot"
	tagCorrupt = 0x636f7272 // "corr"
)

// DrawShotFault decides deterministically whether the readout at (call,
// term, group, attempt) misfires, and with which corruption kind. The
// attempt index makes every retry an independent draw.
func (inj *Injector) DrawShotFault(call uint64, term, group, attempt int) (Kind, bool) {
	if inj.ShotRate <= 0 {
		return 0, false
	}
	h := inj.draw(tagShot, call, term, group, attempt)
	// Top 53 bits to a uniform in [0,1): the standard float64 trick.
	u := float64(h>>11) / (1 << 53)
	if u >= inj.ShotRate {
		return 0, false
	}
	return Kind(mix64(h) % uint64(numKinds)), true
}

// CorruptSeed keys the corruption pattern of one misfire (which samples a
// NaN glitch poisons, where a spike lands).
func (inj *Injector) CorruptSeed(call uint64, term, group, attempt int) uint64 {
	return inj.draw(tagCorrupt, call, term, group, attempt)
}

// ResidualGain returns the multiplicative laser-power gain of one engine
// call relative to the last calibration probe: drift accumulates linearly
// at DriftRate per call and re-references to 1 every ProbeInterval calls
// (the probe measures the true gain and recalibrates the DAC/ADC scales).
// The model is stateless — the residual is a pure function of the call
// index — so concurrent and out-of-order readouts stay deterministic. Probe
// crossings feed the Recalibrations counter.
func (inj *Injector) ResidualGain(call uint64) float64 {
	if inj.DriftRate <= 0 {
		return 1
	}
	probe := inj.ProbeInterval
	if probe < 1 {
		probe = 1
	}
	epoch := call - call%probe
	if epoch > 0 {
		inj.noteEpoch(epoch)
	}
	return 1 + inj.DriftRate*float64(call-epoch)
}

// noteEpoch lifts the highest-observed probe epoch (monotonic max).
func (inj *Injector) noteEpoch(epoch uint64) {
	for {
		cur := inj.probedEpoch.Load()
		if epoch <= cur || inj.probedEpoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// Down reports whether the device is in full outage at the given 1-based
// engine call index.
func (inj *Injector) Down(call uint64) bool {
	return inj.OutageAt > 0 && call >= inj.OutageAt
}

// CorruptPlane applies one misfire's corruption to a correlation plane in
// place. bound is the caller's plane-magnitude envelope (the ADC full scale
// or the Cauchy-Schwarz correlation bound); the spike lands far above it so
// GuardPlane always flags it. Corruptions GuardPlane would pass are
// value-preserving by construction (KindZero on an all-zero plane), so an
// undetected misfire can never change a result.
func CorruptPlane(plane []float64, kind Kind, seed uint64, bound float64) {
	if len(plane) == 0 {
		return
	}
	switch kind {
	case KindNaN:
		// Poison a deterministic handful of samples.
		n := 1 + int(mix64(seed)%4)
		for i := 0; i < n; i++ {
			plane[mix64(seed+uint64(i))%uint64(len(plane))] = math.NaN()
		}
	case KindSpike:
		plane[mix64(seed)%uint64(len(plane))] += 1e3 * (bound + 1)
	case KindZero:
		for i := range plane {
			plane[i] = 0
		}
	}
}

// PlaneStats returns the max magnitude and L1 energy of a clean correlation
// plane — the envelope references GuardPlane checks a suspect readout
// against. Callers derive the guard bound from the clean plane (e.g.
// 2*maxAbs+1), which keeps the guard detector-agnostic: every corruption
// CorruptPlane applies with that bound is either detected or
// value-preserving.
func PlaneStats(plane []float64) (maxAbs, energy float64) {
	for _, v := range plane {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
		energy += v
	}
	return maxAbs, energy
}

// GuardPlane is the per-shot sanity guard: it checks one observed readout
// plane against physical envelopes and returns a non-nil error (wrapping
// ErrDeviceFault) when the shot cannot be trusted and must be re-run.
//
//   - NaN/Inf anywhere: no physical charge pattern produces them.
//   - Magnitude above maxAbs (the ADC full-scale envelope with margin, or
//     the Cauchy-Schwarz correlation bound sqrt(Es*Ek) at the JTC level):
//     no valid correlation exceeds it. maxAbs <= 0 skips the check.
//   - Total energy collapse: a plane reading exactly zero while the
//     expected energy cleanEnergy is positive means the shot was dropped.
//     cleanEnergy <= 0 skips the check (an empty plane is legitimately
//     zero).
func GuardPlane(plane []float64, maxAbs, cleanEnergy float64) error {
	energy := 0.0
	for i, v := range plane {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("fault: %w: non-finite readout sample %d", ErrDeviceFault, i)
		}
		if v < 0 {
			v = -v
		}
		if maxAbs > 0 && v > maxAbs {
			return fmt.Errorf("fault: %w: readout sample %d magnitude %g exceeds envelope %g", ErrDeviceFault, i, v, maxAbs)
		}
		energy += v
	}
	if cleanEnergy > 0 && energy == 0 {
		return fmt.Errorf("fault: %w: readout energy collapsed (expected %g)", ErrDeviceFault, cleanEnergy)
	}
	return nil
}
