package fault

import (
	"errors"
	"math"
	"testing"
)

func TestParseSpec(t *testing.T) {
	inj, err := Parse("shot:1e-3;drift:5e-5;probe:16;retries:5;stuckbit:0;stuckbit:3;deadrow:7;deadrow:2;deadrow:7;outage:40", 9)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Seed != 9 || inj.ShotRate != 1e-3 || inj.DriftRate != 5e-5 {
		t.Fatalf("rates: %+v", inj)
	}
	if inj.ProbeInterval != 16 || inj.MaxShotRetries != 5 {
		t.Fatalf("probe/retries: %+v", inj)
	}
	if inj.StuckBits != 0b1001 {
		t.Fatalf("stuck bits %b", inj.StuckBits)
	}
	if got := inj.DeadSlots(); len(got) != 2 || got[0] != 2 || got[1] != 7 {
		t.Fatalf("dead slots %v (want sorted dedup [2 7])", got)
	}
	if inj.OutageAt != 40 {
		t.Fatalf("outage %d", inj.OutageAt)
	}
	if !inj.Active() {
		t.Fatal("configured injector should be Active")
	}
}

func TestParseEmptyAndNone(t *testing.T) {
	for _, spec := range []string{"", "none", "  "} {
		inj, err := Parse(spec, 1)
		if err != nil || inj != nil {
			t.Fatalf("Parse(%q) = %v, %v; want nil, nil", spec, inj, err)
		}
	}
	var nilInj *Injector
	if nilInj.Active() {
		t.Fatal("nil injector must not be Active")
	}
	if nilInj.DeadSlots() != nil {
		t.Fatal("nil injector DeadSlots must be nil")
	}
	if c := nilInj.Counters(); c != (Counters{}) {
		t.Fatalf("nil injector counters %+v", c)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"shot",            // no param
		"shot:",           // empty param
		":1e-3",           // empty mode
		"shot:2",          // rate > 1
		"shot:-0.1",       // negative rate
		"drift:nan",       // NaN rate
		"probe:0",         // probe must be >= 1
		"probe:-3",        // negative
		"retries:-1",      // negative
		"stuckbit:32",     // out of [0,31]
		"deadrow:-2",      // negative slot
		"outage:0",        // calls are 1-based
		"laser:0.1",       // unknown mode
		"shot:1e-3;;",     // empty entry
		"shot:1e-3,drift", // ',' is the engine-spec separator, not valid here
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 0); err == nil {
			t.Errorf("Parse(%q) accepted, want error", spec)
		}
	}
}

// TestDrawDeterminism: draws are a pure function of (seed, coordinates) —
// identical across repeats, decorrelated across seeds and attempts.
func TestDrawDeterminism(t *testing.T) {
	inj, err := Parse("shot:0.2", 7)
	if err != nil {
		t.Fatal(err)
	}
	inj2, _ := Parse("shot:0.2", 7)
	other, _ := Parse("shot:0.2", 8)
	faults, diffSeed, diffAttempt := 0, 0, 0
	for call := uint64(1); call <= 2000; call++ {
		k1, hit1 := inj.DrawShotFault(call, 1, 2, 0)
		k2, hit2 := inj2.DrawShotFault(call, 1, 2, 0)
		if hit1 != hit2 || k1 != k2 {
			t.Fatalf("call %d: same seed diverged", call)
		}
		if hit1 {
			faults++
			if s1, s2 := inj.CorruptSeed(call, 1, 2, 0), inj2.CorruptSeed(call, 1, 2, 0); s1 != s2 {
				t.Fatalf("call %d: corrupt seed diverged", call)
			}
		}
		_, hitOther := other.DrawShotFault(call, 1, 2, 0)
		if hit1 != hitOther {
			diffSeed++
		}
		_, hitRetry := inj.DrawShotFault(call, 1, 2, 1)
		if hit1 != hitRetry {
			diffAttempt++
		}
	}
	// 0.2 rate over 2000 draws: expect ~400 faults and decorrelation across
	// both seed and attempt; loose bounds keep the test robust.
	if faults < 250 || faults > 550 {
		t.Fatalf("fault count %d implausible for rate 0.2 over 2000 draws", faults)
	}
	if diffSeed == 0 || diffAttempt == 0 {
		t.Fatalf("draws not decorrelated: seed diff %d, attempt diff %d", diffSeed, diffAttempt)
	}
}

func TestResidualGainEpochs(t *testing.T) {
	inj, err := Parse("drift:1e-3;probe:10", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g := inj.ResidualGain(0); g != 1 {
		t.Fatalf("gain at probe call: %g", g)
	}
	if g := inj.ResidualGain(7); g != 1+7e-3 {
		t.Fatalf("gain 7 calls past probe: %g", g)
	}
	// Re-references at each probe: call 23 is 3 past the epoch at 20.
	if g := inj.ResidualGain(23); g != 1+3e-3 {
		t.Fatalf("gain after recalibration: %g", g)
	}
	if c := inj.Counters(); c.Recalibrations != 2 {
		t.Fatalf("recalibrations %d, want 2 (epoch 20 / probe 10)", c.Recalibrations)
	}
	// Stateless: out-of-order queries reproduce earlier answers.
	if g := inj.ResidualGain(7); g != 1+7e-3 {
		t.Fatalf("out-of-order gain: %g", g)
	}
}

func TestDown(t *testing.T) {
	inj, err := Parse("outage:5", 1)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Down(4) {
		t.Fatal("down before OutageAt")
	}
	if !inj.Down(5) || !inj.Down(100) {
		t.Fatal("outage must be permanent from OutageAt on")
	}
}

// TestGuardCatchesEveryCorruption: for each corruption kind, either
// GuardPlane flags the corrupted plane or the corruption was
// value-preserving — the no-silent-wrong-answers contract.
func TestGuardCatchesEveryCorruption(t *testing.T) {
	clean := []float64{0.5, -1.25, 0, 2.0, -0.75, 0.1}
	maxAbs, energy := PlaneStats(clean)
	bound := 2*maxAbs + 1
	for kind := Kind(0); kind < numKinds; kind++ {
		for seed := uint64(1); seed <= 50; seed++ {
			plane := append([]float64(nil), clean...)
			CorruptPlane(plane, kind, seed, bound)
			err := GuardPlane(plane, bound, energy)
			changed := false
			for i := range plane {
				if plane[i] != clean[i] && !(math.IsNaN(plane[i]) && math.IsNaN(clean[i])) {
					changed = true
					break
				}
			}
			if changed && err == nil {
				t.Fatalf("kind %v seed %d: value-changing corruption passed the guard", kind, seed)
			}
			if err != nil && !errors.Is(err, ErrDeviceFault) {
				t.Fatalf("guard error %v does not wrap ErrDeviceFault", err)
			}
		}
	}
	if err := GuardPlane(clean, bound, energy); err != nil {
		t.Fatalf("clean plane flagged: %v", err)
	}
}

func TestGuardZeroCollapse(t *testing.T) {
	plane := []float64{0, 0, 0}
	if err := GuardPlane(plane, 1, 2.5); err == nil {
		t.Fatal("zero plane with positive expected energy must be flagged")
	}
	// An expected-zero plane is legitimately zero.
	if err := GuardPlane(plane, 1, 0); err != nil {
		t.Fatalf("expected-zero plane flagged: %v", err)
	}
}
