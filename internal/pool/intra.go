// Intra-sample execution strategies: output-channel sharding and
// layer-stage pipelining. Sample sharding (pool.go) scales batch
// throughput with pool size but leaves batch-1 latency at one device's
// serial time; these two strategies spend the pool on a SINGLE inference.
//
// Channel sharding splits every engine layer's output channels across the
// live devices and merges partial activations. Bit-identity to
// single-engine execution holds because the per-(call, term, group)
// readout-substream keys are position-derived (the same first/stride
// values ForwardBatchCalls would use key every range) and the ADC full
// scales are re-combined from every range's raw maxima before readout
// (nn.CombineRangeScales) — see DESIGN.md for the alignment proof.
//
// Pipelining assigns contiguous step stages of the compiled plan to
// devices, balanced by the arch cost model, and walks each sample through
// the stages; concurrent samples (from one request or many) occupy
// different stage devices simultaneously. Each stage run aligns its
// device to base + b*stride + keyedPrefix[stage] before executing, so the
// counter path draws exactly the call indices a single engine would.
package pool

import (
	"fmt"
	"sync"
	"time"

	"photofourier/internal/arch"
	"photofourier/internal/nets"
	"photofourier/internal/nn"
	"photofourier/internal/tensor"
)

// SplitChannels splits cout output channels into at most parts contiguous
// near-even ranges (the channel-shard work assignment; exported so the
// bench's modeled metric uses the scheduler's exact split).
func SplitChannels(cout, parts int) [][2]int {
	if parts > cout {
		parts = cout
	}
	if parts < 1 {
		parts = 1
	}
	out := make([][2]int, 0, parts)
	lo := 0
	for d := 0; d < parts; d++ {
		hi := lo + (cout-lo)/(parts-d)
		if hi > lo {
			out = append(out, [2]int{lo, hi})
		}
		lo = hi
	}
	return out
}

// StepCosts prices every plan step with the arch performance model
// (arch.EvalLayer modeled seconds for engine convolutions, zero for CPU
// steps). When the arch model cannot price a convolution the costs fall
// back to MAC counts for every conv, keeping units comparable; keyed steps
// with no static geometry cost one unit.
func StepCosts(metas []nn.StepMeta) []float64 {
	cfg := arch.PhotoFourierCG()
	costs := make([]float64, len(metas))
	archOK := true
	for i, m := range metas {
		if m.Conv == nil {
			continue
		}
		lp, err := arch.EvalLayer(cfg, nets.Layer{
			Name: m.Name, Kind: nets.Conv,
			Cin: m.Conv.Cin, Cout: m.Conv.Cout,
			H: m.Conv.H, W: m.Conv.W, K: m.Conv.K,
			Stride: m.Conv.Stride, Pad: m.Conv.Pad,
		})
		if err != nil {
			archOK = false
			break
		}
		costs[i] = lp.TimeS
	}
	if !archOK {
		for i := range costs {
			costs[i] = 0
		}
		for i, m := range metas {
			if m.Conv != nil {
				oh, ow := tensor.ConvOut(m.Conv.H, m.Conv.K, 1, pad2(m.Conv)), tensor.ConvOut(m.Conv.W, m.Conv.K, 1, pad2(m.Conv))
				costs[i] = float64(m.Conv.Cin) * float64(m.Conv.Cout) * float64(oh*ow) * float64(m.Conv.K*m.Conv.K)
			}
		}
	}
	for i, m := range metas {
		if m.Conv == nil && m.Keyed > 0 && costs[i] == 0 {
			costs[i] = 1
		}
	}
	return costs
}

func pad2(c *nn.ConvGeom) int {
	if c.Pad == tensor.Same {
		return c.K - 1
	}
	return 0
}

// StageBounds partitions len(costs) contiguous steps into at most stages
// non-empty stages minimizing the maximum stage cost (the pipeline's
// bottleneck). Returns stage boundaries b with b[0]=0 and
// b[len(b)-1]=len(costs); stage s is steps [b[s], b[s+1]).
func StageBounds(costs []float64, stages int) []int {
	n := len(costs)
	if stages > n {
		stages = n
	}
	if stages < 1 {
		stages = 1
	}
	prefix := make([]float64, n+1)
	for i, c := range costs {
		prefix[i+1] = prefix[i] + c
	}
	span := func(i, j int) float64 { return prefix[j] - prefix[i] }
	// dp[s][i]: minimal bottleneck splitting the first i steps into s
	// stages; cut[s][i] the position of the last stage's start.
	const inf = 1e300
	dp := make([][]float64, stages+1)
	cut := make([][]int, stages+1)
	for s := range dp {
		dp[s] = make([]float64, n+1)
		cut[s] = make([]int, n+1)
		for i := range dp[s] {
			dp[s][i] = inf
		}
	}
	dp[0][0] = 0
	for s := 1; s <= stages; s++ {
		for i := s; i <= n; i++ {
			for j := s - 1; j < i; j++ {
				if dp[s-1][j] >= inf {
					continue
				}
				m := dp[s-1][j]
				if w := span(j, i); w > m {
					m = w
				}
				if m < dp[s][i] {
					dp[s][i] = m
					cut[s][i] = j
				}
			}
		}
	}
	bounds := make([]int, stages+1)
	bounds[stages] = n
	for s, i := stages, n; s > 0; s-- {
		i = cut[s][i]
		bounds[s-1] = i
	}
	return bounds
}

// liveDevices snapshots the live devices in slot order, capped at the
// request shard ceiling.
func (p *DevicePool) liveDevices() []*device {
	p.mu.Lock()
	defer p.mu.Unlock()
	var live []*device
	for _, d := range p.devs {
		if d.state == stateLive {
			live = append(live, d)
		}
	}
	if len(live) > p.opts.MaxShards {
		live = live[:p.opts.MaxShards]
	}
	return live
}

// forwardChannel serves one request with every live device cooperating on
// every layer: engine convolutions split by output-channel range
// (two-phase: sweep+maxima on all devices, combine scales, then readout),
// CPU steps run once on the host. Requests are serialized (intraMu) — the
// strategy occupies the whole pool by design.
func (p *DevicePool) forwardChannel(x *tensor.Tensor, base, req uint64) (*tensor.Tensor, error) {
	p.intraMu.Lock()
	defer p.intraMu.Unlock()
	devs := p.liveDevices()
	if len(devs) == 0 {
		p.exhausted.Add(1)
		return nil, p.exhaustedErr(nil)
	}
	// The whole request holds every device's run lock: the two phases of
	// each layer must execute in lockstep, and probes only touch
	// quarantined devices (which are not in devs).
	for _, d := range devs {
		d.run.Lock()
	}
	defer func() {
		for _, d := range devs {
			d.run.Unlock()
		}
	}()
	n := x.Shape[0]
	active := make([]time.Duration, len(devs))
	devErr := make([]error, len(devs))
	out, err := p.runChannelSteps(x, base, req, devs, active, devErr)
	p.shardsN.Add(uint64(len(devs)))
	for i, d := range devs {
		p.noteShard(d, n, active[i], devErr[i])
	}
	return out, err
}

func (p *DevicePool) runChannelSteps(x *tensor.Tensor, base, req uint64, devs []*device, active []time.Duration, devErr []error) (*tensor.Tensor, error) {
	n := x.Shape[0]
	cur := x
	putCur := func() {
		if cur != x {
			tensor.PutScratch(cur)
		}
	}
	keyed := uint64(0)
	for j := range devs[0].chanSteps {
		step := devs[0].chanSteps[j]
		if step.Range == nil {
			t0 := time.Now()
			out, err := step.Run(cur)
			active[0] += time.Since(t0)
			if err != nil {
				putCur()
				return nil, fmt.Errorf("pool: channel-shard step %s: %w", step.Name, err)
			}
			putCur()
			cur = out
			continue
		}
		cout := step.Range.OutChannels()
		ranges := SplitChannels(cout, len(devs))
		first := base + keyed + 1
		keyed++
		runs := make([]nn.ChannelRangeRun, len(ranges))
		errs := make([]error, len(ranges))
		var wg sync.WaitGroup
		for i := range ranges {
			p.logf("req=%d mode=channel step=%s first=%d dev=%d oc=[%d,%d)",
				req, step.Name, first, devs[i].id, ranges[i][0], ranges[i][1])
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				t0 := time.Now()
				runs[i], errs[i] = devs[i].chanSteps[j].Range.BeginBatchRange(cur, ranges[i][0], ranges[i][1], first, p.stride)
				active[i] += time.Since(t0)
			}(i)
		}
		wg.Wait()
		fail := func() error {
			var firstErr error
			for i, e := range errs {
				if e != nil {
					devErr[i] = e
					if firstErr == nil {
						firstErr = e
					}
				}
				if runs[i] != nil {
					runs[i].Release()
				}
			}
			putCur()
			return fmt.Errorf("pool: channel-shard step %s: %w", step.Name, firstErr)
		}
		for _, e := range errs {
			if e != nil {
				return nil, fail()
			}
		}
		maxima := make([]nn.RangeMaxima, len(ranges))
		for i := range runs {
			maxima[i] = runs[i].Maxima()
		}
		scales, err := nn.CombineRangeScales(maxima)
		if err != nil {
			for _, r := range runs {
				r.Release()
			}
			putCur()
			return nil, fmt.Errorf("pool: channel-shard step %s: %w", step.Name, err)
		}
		parts := make([]*tensor.Tensor, len(ranges))
		for i := range ranges {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				t0 := time.Now()
				parts[i], errs[i] = runs[i].Finish(scales)
				active[i] += time.Since(t0)
			}(i)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				for _, part := range parts {
					if part != nil {
						tensor.PutScratch(part)
					}
				}
				return nil, fail()
			}
		}
		oh, ow := parts[0].Shape[2], parts[0].Shape[3]
		plane := oh * ow
		merged := tensor.GetScratch(n, cout, oh, ow)
		for i, sp := range ranges {
			rc := sp[1] - sp[0]
			for b := 0; b < n; b++ {
				copy(merged.Data[(b*cout+sp[0])*plane:(b*cout+sp[1])*plane],
					parts[i].Data[b*rc*plane:(b+1)*rc*plane])
			}
			tensor.PutScratch(parts[i])
		}
		putCur()
		cur = merged
	}
	// Results leave the scratch pool: sample-shard ForwardBatch returns a
	// plain tensor and callers never recycle it.
	out := tensor.New(cur.Shape...)
	copy(out.Data, cur.Data)
	putCur()
	return out, nil
}

// pipeShape caches the per-input-geometry step metadata the pipeline
// scheduler partitions over.
type pipeShape struct {
	metas  []nn.StepMeta
	costs  []float64
	prefix []uint64 // keyed call indices consumed before each step
}

// pipeAssign is one cached stage partition: stage s is steps
// [bounds[s], bounds[s+1]) on devs[s]. Invalidated when a stage device
// faults or leaves the live set.
type pipeAssign struct {
	devs   []*device
	bounds []int
}

func (p *DevicePool) shapeFor(c, h, w int) (*pipeShape, error) {
	key := [3]int{c, h, w}
	p.pipeMu.Lock()
	defer p.pipeMu.Unlock()
	if p.pipeMetas == nil {
		p.pipeMetas = make(map[[3]int]*pipeShape)
	}
	if s, ok := p.pipeMetas[key]; ok {
		return s, nil
	}
	metas, err := p.devs[0].plan.StepMetas(c, h, w)
	if err != nil {
		return nil, fmt.Errorf("pool: shard=pipeline: %w", err)
	}
	s := &pipeShape{metas: metas, costs: StepCosts(metas)}
	s.prefix = make([]uint64, len(metas)+1)
	for i, m := range metas {
		s.prefix[i+1] = s.prefix[i] + m.Keyed
	}
	p.pipeMetas[key] = s
	return s, nil
}

// pipeAssignment returns the current stage partition, recomputing it over
// the live devices when no valid one is cached. nil means no live devices.
func (p *DevicePool) pipeAssignment(sh *pipeShape, req uint64) *pipeAssign {
	p.pipeMu.Lock()
	defer p.pipeMu.Unlock()
	if p.pipe != nil {
		valid := true
		p.mu.Lock()
		for _, d := range p.pipe.devs {
			if d.state != stateLive {
				valid = false
				break
			}
		}
		p.mu.Unlock()
		if valid {
			return p.pipe
		}
		p.pipe = nil
	}
	devs := p.liveDevices()
	if len(devs) == 0 {
		return nil
	}
	bounds := StageBounds(sh.costs, len(devs))
	devs = devs[:len(bounds)-1]
	p.pipe = &pipeAssign{devs: devs, bounds: bounds}
	ids := make([]int, len(devs))
	for i, d := range devs {
		ids[i] = d.id
	}
	p.logf("req=%d mode=pipeline stages=%v devs=%v", req, bounds, ids)
	return p.pipe
}

func (p *DevicePool) invalidatePipe(a *pipeAssign) {
	p.pipeMu.Lock()
	if p.pipe == a {
		p.pipe = nil
	}
	p.pipeMu.Unlock()
}

// forwardPipeline streams the request's samples through the stage
// partition: one goroutine per sample walks the stages in order, and the
// per-device run locks overlap different samples on different stages —
// within this request and across concurrent requests. A stage fault
// invalidates the partition; the sample resumes from its current step on
// a fresh partition over the remaining live devices.
func (p *DevicePool) forwardPipeline(x *tensor.Tensor, base, req uint64) (*tensor.Tensor, error) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	sh, err := p.shapeFor(c, h, w)
	if err != nil {
		return nil, err
	}
	per := c * h * w
	outs := make([]*tensor.Tensor, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for b := 0; b < n; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			sample := &tensor.Tensor{Shape: []int{1, c, h, w}, Data: x.Data[b*per : (b+1)*per]}
			outs[b], errs[b] = p.pipelineSample(sh, sample, base+uint64(b)*p.stride, req, b)
		}(b)
	}
	wg.Wait()
	var out *tensor.Tensor
	rowLen := 0
	for b := 0; b < n; b++ {
		if errs[b] != nil {
			for _, o := range outs {
				if o != nil {
					tensor.PutScratch(o)
				}
			}
			return nil, errs[b]
		}
		if out == nil {
			shape := append([]int{n}, outs[b].Shape[1:]...)
			out = tensor.New(shape...)
			rowLen = outs[b].Size()
		}
		copy(out.Data[b*rowLen:(b+1)*rowLen], outs[b].Data)
		tensor.PutScratch(outs[b])
	}
	return out, nil
}

// pipelineSample walks one sample through the stages. sampleBase is the
// pool frontier position of the sample's call block (base + b*stride).
func (p *DevicePool) pipelineSample(sh *pipeShape, sample *tensor.Tensor, sampleBase, req uint64, b int) (*tensor.Tensor, error) {
	cur := sample
	pos := 0
	// Every fault quarantines a device after QuarantineThreshold strikes;
	// the bound is generous so a dying pool degrades instead of spinning.
	tries := len(p.devs)*p.opts.QuarantineThreshold + len(sh.metas) + 4
	var lastErr error
	for pos < len(sh.metas) {
		if p.isClosed() {
			if cur != sample {
				tensor.PutScratch(cur)
			}
			return nil, ErrPoolClosed
		}
		a := p.pipeAssignment(sh, req)
		if a == nil {
			if cur != sample {
				tensor.PutScratch(cur)
			}
			p.exhausted.Add(1)
			return nil, p.exhaustedErr(lastErr)
		}
		// The stage containing pos: after a mid-stage fault, the sample
		// resumes from pos and runs out the remainder of that stage.
		s := 0
		for s+1 < len(a.bounds)-1 && a.bounds[s+1] <= pos {
			s++
		}
		hi := a.bounds[s+1]
		if hi <= pos {
			hi = pos + 1
		}
		d := a.devs[s]
		p.logf("req=%d mode=pipeline sample=%d dev=%d steps=[%d,%d) align=%d",
			req, b, d.id, pos, hi, sampleBase+sh.prefix[pos])
		d.run.Lock()
		t0 := time.Now()
		d.plan.AlignEngineCalls(sampleBase + sh.prefix[pos])
		out, err := d.plan.ForwardSteps(cur, pos, hi)
		elapsed := time.Since(t0)
		d.run.Unlock()
		p.shardsN.Add(1)
		p.noteShard(d, 1, elapsed, err)
		if err != nil {
			lastErr = err
			p.invalidatePipe(a)
			if tries--; tries < 0 {
				if cur != sample {
					tensor.PutScratch(cur)
				}
				return nil, fmt.Errorf("pool: pipelined sample failed on every live device: %w", err)
			}
			continue
		}
		if cur != sample {
			tensor.PutScratch(cur)
		}
		cur = out
		pos = hi
	}
	if cur == sample {
		// Zero-step plans cannot happen (Compile rejects empty networks),
		// but keep the ownership contract airtight.
		clone := tensor.GetScratch(cur.Shape...)
		copy(clone.Data, cur.Data)
		cur = clone
	}
	return cur, nil
}
