package pool

import (
	"errors"
	"testing"
	"time"

	"photofourier/internal/nn"
)

func TestParseSpec(t *testing.T) {
	o, err := ParseSpec("pool?hedge=true,quarantine=2,probe=10ms,maxshards=3,devices=accelerator?workers=1|accelerator?fault=shot:1e-3;outage:40,faultseed=7|reference")
	if err != nil {
		t.Fatal(err)
	}
	if !o.Hedge || o.QuarantineThreshold != 2 || o.ProbeInterval != 10*time.Millisecond || o.MaxShards != 3 {
		t.Fatalf("params: %+v", o)
	}
	want := []string{
		"accelerator?workers=1",
		"accelerator?fault=shot:1e-3;outage:40,faultseed=7", // ',' and ';' survive inside a device spec
		"reference",
	}
	if len(o.Specs) != len(want) {
		t.Fatalf("specs %v, want %v", o.Specs, want)
	}
	for i := range want {
		if o.Specs[i] != want[i] {
			t.Errorf("spec %d: %q, want %q", i, o.Specs[i], want[i])
		}
	}
}

func TestParseSpecReplication(t *testing.T) {
	o, err := ParseSpec("pool?devices=accelerator?workers=1*3|reference")
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Specs) != 4 {
		t.Fatalf("specs %v, want 3 accelerators + 1 reference", o.Specs)
	}
	for i := 0; i < 3; i++ {
		if o.Specs[i] != "accelerator?workers=1" {
			t.Fatalf("spec %d: %q", i, o.Specs[i])
		}
	}
	if o.Specs[3] != "reference" {
		t.Fatalf("spec 3: %q", o.Specs[3])
	}
}

func TestParseSpecRejects(t *testing.T) {
	bad := []string{
		"accelerator",                      // not a pool spec
		"pool",                             // no devices
		"pool?hedge=true",                  // no devices
		"pool?devices=",                    // empty device list
		"pool?devices=a||b",                // empty entry
		"pool?devices=accelerator*0",       // bad replication
		"pool?bogus=1,devices=accelerator", // unknown parameter
		"pool?hedge,devices=accelerator",   // not key=value
		"pool?probe=xyz,devices=reference", // bad duration
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); !errors.Is(err, ErrBadPool) {
			t.Errorf("ParseSpec(%q) err %v, want ErrBadPool", spec, err)
		}
	}
}

func TestOpenPool(t *testing.T) {
	net := nn.SmallCNN([2]int{4, 8}, 10, 99)
	p, err := Open(net, "pool?quarantine=1,devices=accelerator?workers=1*2")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Size() != 2 || p.Live() != 2 {
		t.Fatalf("size=%d live=%d, want 2/2", p.Size(), p.Live())
	}
	if p.Spec() != "pool?quarantine=1,devices=accelerator?workers=1*2" {
		t.Fatalf("spec %q not preserved", p.Spec())
	}
	if _, err := p.ForwardBatch(poolBatch(1, 3)); err != nil {
		t.Fatal(err)
	}
	// IsPoolSpec steers the CLI between pool and single-engine paths.
	if !IsPoolSpec("pool?devices=reference") || IsPoolSpec("accelerator") {
		t.Fatal("IsPoolSpec misclassified")
	}
}
