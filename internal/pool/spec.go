// Pool spec grammar: one string that names a whole device farm, in the
// spirit of the backend registry's engine specs.
//
//	pool?hedge=true,quarantine=3,probe=50ms,maxshards=4,devices=SPEC|SPEC*3
//
// Device specs themselves contain ',' (backend keys) and ';' (fault
// sub-grammar), so the devices= parameter is NOT ','-splittable and must
// come LAST: everything after "devices=" is the device list, split on '|'.
// A "SPEC*N" entry replicates one spec N times ("accelerator*4" is a
// four-device homogeneous farm). Parameters before devices=:
//
//	hedge=BOOL        enable straggler hedging (default false)
//	hedgedelay=DUR    fixed hedge delay (default: p99-derived)
//	hedgefactor=F     p99 multiplier for the derived delay (default 3)
//	minhedge=DUR      floor for the derived delay (default 500µs)
//	quarantine=N      consecutive faults before quarantine (default 3)
//	probe=DUR         background probe cadence (default 50ms)
//	maxshards=N       shard cap per request (default: pool size)
//	shard=S           execution strategy: sample (default) | channel | pipeline
//	debug=BOOL        log scheduling decisions to stderr (default false)
package pool

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"photofourier/internal/nn"
)

// Name is the spec prefix that selects a device pool.
const Name = "pool"

// IsPoolSpec reports whether spec names a device pool rather than a single
// backend engine.
func IsPoolSpec(spec string) bool {
	return spec == Name || strings.HasPrefix(spec, Name+"?")
}

// ParseSpec parses a pool spec into Options (see the package grammar).
func ParseSpec(spec string) (Options, error) {
	var o Options
	if !IsPoolSpec(spec) {
		return o, fmt.Errorf("%w: spec %q does not start with %q", ErrBadPool, spec, Name+"?")
	}
	rest := strings.TrimPrefix(spec, Name)
	rest = strings.TrimPrefix(rest, "?")
	const devKey = "devices="
	i := strings.Index(rest, devKey)
	if i < 0 {
		return o, fmt.Errorf("%w: spec %q has no devices= list (it must be the last parameter)", ErrBadPool, spec)
	}
	params, devList := rest[:i], rest[i+len(devKey):]
	for _, dev := range strings.Split(devList, "|") {
		dev = strings.TrimSpace(dev)
		if dev == "" {
			return o, fmt.Errorf("%w: spec %q: empty device entry", ErrBadPool, spec)
		}
		reps := 1
		if j := strings.LastIndex(dev, "*"); j >= 0 {
			n, err := strconv.Atoi(dev[j+1:])
			if err != nil || n < 1 {
				return o, fmt.Errorf("%w: spec %q: bad replication %q (want SPEC*N)", ErrBadPool, spec, dev)
			}
			reps, dev = n, dev[:j]
		}
		for r := 0; r < reps; r++ {
			o.Specs = append(o.Specs, dev)
		}
	}
	params = strings.TrimSuffix(params, ",")
	if params != "" {
		for _, kv := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok || key == "" || val == "" {
				return o, fmt.Errorf("%w: spec %q: parameter %q is not key=value", ErrBadPool, spec, kv)
			}
			var err error
			switch key {
			case "hedge":
				o.Hedge, err = strconv.ParseBool(val)
			case "hedgedelay":
				o.HedgeDelay, err = time.ParseDuration(val)
			case "hedgefactor":
				o.HedgeFactor, err = strconv.ParseFloat(val, 64)
			case "minhedge":
				o.MinHedge, err = time.ParseDuration(val)
			case "quarantine":
				o.QuarantineThreshold, err = strconv.Atoi(val)
			case "probe":
				o.ProbeInterval, err = time.ParseDuration(val)
			case "maxshards":
				o.MaxShards, err = strconv.Atoi(val)
			case "shard":
				o.Shard = val
			case "debug":
				o.Debug, err = strconv.ParseBool(val)
			default:
				return o, fmt.Errorf("%w: spec %q: unknown parameter %q (devices= must come last)", ErrBadPool, spec, key)
			}
			if err != nil {
				return o, fmt.Errorf("%w: spec %q: parameter %q: %v", ErrBadPool, spec, kv, err)
			}
		}
	}
	return o, nil
}

// Open parses a pool spec and builds the pool over net — the pool twin of
// backend.Open + Network.Compile.
func Open(net *nn.Network, spec string) (*DevicePool, error) {
	o, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	p, err := New(net, o)
	if err != nil {
		return nil, err
	}
	p.spec = spec
	return p, nil
}

// synthesizeSpec renders Options back into the canonical grammar (used by
// New, where no textual spec exists yet).
func synthesizeSpec(o Options) string {
	var b strings.Builder
	b.WriteString(Name + "?")
	if o.Hedge {
		b.WriteString("hedge=true,")
	}
	if o.Shard != "" && o.Shard != ShardSample {
		fmt.Fprintf(&b, "shard=%s,", o.Shard)
	}
	if o.Debug {
		b.WriteString("debug=true,")
	}
	fmt.Fprintf(&b, "quarantine=%d,probe=%s,devices=%s",
		o.QuarantineThreshold, o.ProbeInterval, strings.Join(o.Specs, "|"))
	return b.String()
}
