// Device health: the per-device state machine (live → quarantined →
// probed → readmitted), the EWMA latency score the scheduler ranks devices
// by, and the background canary probe loop.
//
// State transitions:
//
//	live ──(QuarantineThreshold consecutive shard faults)──▶ quarantined
//	quarantined ──(background canary probe succeeds)──▶ live (readmitted)
//
// Quarantined devices leave the scheduling rotation immediately; a device
// is only quarantined after its in-flight shard has completed (faults are
// observed at shard completion), and the probe additionally takes the
// device's run lock, so readmission always happens on a drained device. A
// probe aligns the device to the pool's current call frontier and replays a
// cached canary sample; a permanently dead device (outage fault) keeps
// failing its probes and never flaps back in.
package pool

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"photofourier/internal/nn"
	"photofourier/internal/tensor"
)

type deviceState int

const (
	stateLive deviceState = iota
	stateQuarantined
)

func (s deviceState) String() string {
	if s == stateQuarantined {
		return "quarantined"
	}
	return "live"
}

// ewmaAlpha weights the newest shard latency in the health score.
const ewmaAlpha = 0.2

// device is one pool slot: a registry-opened engine with its compiled plan
// and health accounting.
type device struct {
	id   int
	spec string
	plan *nn.NetworkPlan
	// chanSteps is the plan lowered for output-channel sharding (populated
	// by New when Options.Shard is ShardChannel).
	chanSteps []nn.ChannelStep

	// run serializes counter alignment and execution on the physical
	// device; the probe loop takes it too, so readmission drains first.
	run sync.Mutex

	// Guarded by DevicePool.mu.
	state        deviceState
	busy         bool
	consecFaults int
	ewmaNs       float64
	lastErr      error

	// Monotonic counters (atomic: read by DeviceHealth without the lock).
	shards    atomic.Uint64
	samples   atomic.Uint64
	faults    atomic.Uint64
	probesN   atomic.Uint64
	readmitsN atomic.Uint64
	busyNanos atomic.Int64
}

// HealthScore is the pool's device-ranking function: lower is healthier.
// Latency EWMA scaled up by recent consecutive faults; an unmeasured device
// scores 0 and is tried first. Exported so schedulers outside the pool —
// notably the fleet simulator's health-weighted routing policy — rank by
// the exact same score the real dispatcher uses.
func HealthScore(ewmaNs float64, consecFaults int) float64 {
	return ewmaNs * float64(1+consecFaults)
}

// score ranks devices for scheduling (see HealthScore).
func (d *device) score() float64 { return HealthScore(d.ewmaNs, d.consecFaults) }

// acquire blocks until a live, idle device outside tried can be reserved,
// preferring the healthiest score. nil means no live device outside tried
// exists (so the shard's retry loop must stop) or the pool closed.
func (p *DevicePool) acquire(tried map[*device]bool) *device {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil
		}
		var best *device
		candidates := false
		for _, d := range p.devs {
			if d.state != stateLive || tried[d] {
				continue
			}
			candidates = true
			if d.busy {
				continue
			}
			if best == nil || d.score() < best.score() {
				best = d
			}
		}
		if best != nil {
			best.busy = true
			return best
		}
		if !candidates {
			return nil
		}
		p.cond.Wait()
	}
}

// acquireHinted reserves hint when it is live and idle, falling back to
// the scored acquire. ForwardBatch stripes a request's shards across
// distinct devices via hints instead of reserving them up front (which
// could deadlock concurrent multi-shard requests); a hint lost to a
// concurrent request just degrades to the dynamic path.
func (p *DevicePool) acquireHinted(hint *device, tried map[*device]bool) *device {
	if hint != nil {
		p.mu.Lock()
		if !p.closed && hint.state == stateLive && !hint.busy && !tried[hint] {
			hint.busy = true
			p.mu.Unlock()
			return hint
		}
		p.mu.Unlock()
	}
	return p.acquire(tried)
}

// stripeOrder snapshots the live devices healthiest-first — the dispatch
// hints ForwardBatch stripes its shards across. Without striping, the
// greedy scored acquire piles consecutive shards onto whichever device's
// freshly-updated score dips lowest whenever shard executions serialize
// (a starved host, or more shards than free devices).
func (p *DevicePool) stripeOrder(nShards int) []*device {
	p.mu.Lock()
	defer p.mu.Unlock()
	var live []*device
	for _, d := range p.devs {
		if d.state == stateLive {
			live = append(live, d)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].score() < live[j].score() })
	if len(live) > nShards {
		live = live[:nShards]
	}
	return live
}

// acquireIdle is the hedge path's non-blocking acquire: the healthiest
// live idle device outside tried, or nil.
func (p *DevicePool) acquireIdle(tried map[*device]bool) *device {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	var best *device
	for _, d := range p.devs {
		if d.state != stateLive || tried[d] || d.busy {
			continue
		}
		if best == nil || d.score() < best.score() {
			best = d
		}
	}
	if best != nil {
		best.busy = true
	}
	return best
}

// noteShard records one completed shard attempt on d: frees the device,
// updates the health score, and runs the quarantine transition.
func (p *DevicePool) noteShard(d *device, samples int, elapsed time.Duration, err error) {
	d.shards.Add(1)
	d.busyNanos.Add(int64(elapsed))
	p.mu.Lock()
	d.busy = false
	ns := float64(elapsed)
	if d.ewmaNs == 0 {
		d.ewmaNs = ns
	} else {
		d.ewmaNs += ewmaAlpha * (ns - d.ewmaNs)
	}
	if err == nil {
		d.consecFaults = 0
		d.lastErr = nil
		d.samples.Add(uint64(samples))
		p.ring[p.ringI] = ns
		p.ringI = (p.ringI + 1) % latencyRingSize
		if p.ringN < latencyRingSize {
			p.ringN++
		}
	} else {
		d.faults.Add(1)
		d.consecFaults++
		d.lastErr = err
		if d.state == stateLive && d.consecFaults >= p.opts.QuarantineThreshold {
			d.state = stateQuarantined
			p.quarantines.Add(1)
		}
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// probeLoop periodically replays the canary sample on every quarantined
// device and readmits the ones that answer cleanly.
func (p *DevicePool) probeLoop() {
	defer close(p.probeDone)
	for {
		select {
		case <-p.stop:
			return
		case <-p.opts.after(p.opts.ProbeInterval):
			p.probeQuarantined()
		}
	}
}

func (p *DevicePool) probeQuarantined() {
	p.mu.Lock()
	canary := p.canary
	var targets []*device
	for _, d := range p.devs {
		if d.state == stateQuarantined {
			targets = append(targets, d)
		}
	}
	p.mu.Unlock()
	if canary == nil {
		return
	}
	for _, d := range targets {
		p.probe(d, canary)
	}
}

// probe replays the canary on a quarantined device, aligned to the pool's
// current call frontier (the probe does not advance it — the same indices
// will key the device's next real shard, and draws are pure functions of
// their keys). Taking the run lock drains any in-flight shard first.
func (p *DevicePool) probe(d *device, canary *tensor.Tensor) {
	d.run.Lock()
	d.plan.AlignEngineCalls(p.calls.Load())
	_, err := d.plan.ForwardBatch(canary)
	d.run.Unlock()
	p.probes.Add(1)
	d.probesN.Add(1)
	p.mu.Lock()
	if err == nil {
		if d.state == stateQuarantined {
			d.state = stateLive
			d.consecFaults = 0
			d.lastErr = nil
			d.readmitsN.Add(1)
			p.readmits.Add(1)
			p.cond.Broadcast()
		}
	} else {
		d.lastErr = err
	}
	p.mu.Unlock()
}

// DeviceHealth is one pool device's point-in-time health row.
type DeviceHealth struct {
	// ID is the device's pool slot; Spec its canonical backend spec.
	ID   int
	Spec string
	// State is "live" or "quarantined".
	State string
	// EWMALatency is the exponentially-weighted shard latency the
	// scheduler scores the device by; ConsecFaults the current
	// consecutive-fault run feeding the quarantine threshold.
	EWMALatency  time.Duration
	ConsecFaults int
	// Shards/Samples/Faults count dispatched shard attempts, successfully
	// served samples, and faulted shards; Probes/Readmits the quarantine
	// machinery's activity on this device.
	Shards, Samples, Faults, Probes, Readmits uint64
	// Busy is the cumulative time the device spent executing shards — the
	// per-device occupancy the modeled pool throughput is derived from.
	Busy time.Duration
	// LastError is the most recent shard or probe error ("" when clean).
	LastError string
}

// Score is the row's scheduling rank — HealthScore over the row's EWMA
// latency and consecutive-fault run (lower is healthier).
func (h DeviceHealth) Score() float64 {
	return HealthScore(float64(h.EWMALatency), h.ConsecFaults)
}

// DeviceHealth returns one row per device, in slot order.
func (p *DevicePool) DeviceHealth() []DeviceHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	rows := make([]DeviceHealth, len(p.devs))
	for i, d := range p.devs {
		row := DeviceHealth{
			ID:           d.id,
			Spec:         d.spec,
			State:        d.state.String(),
			EWMALatency:  time.Duration(d.ewmaNs),
			ConsecFaults: d.consecFaults,
			Shards:       d.shards.Load(),
			Samples:      d.samples.Load(),
			Faults:       d.faults.Load(),
			Probes:       d.probesN.Load(),
			Readmits:     d.readmitsN.Load(),
			Busy:         time.Duration(d.busyNanos.Load()),
		}
		if d.lastErr != nil {
			row.LastError = d.lastErr.Error()
		}
		rows[i] = row
	}
	return rows
}
