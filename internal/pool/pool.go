// Package pool shards batched inference across a farm of registry-opened
// accelerator devices while preserving the single-engine batch contract bit
// for bit. The paper's accelerator is a fleet of JTC units, not one perfect
// engine; this package is the fault-domain-aware scheduler such a fleet
// needs: per-device health scoring and circuit breakers feeding a
// quarantine → background probe → readmit state machine, hedged re-dispatch
// of straggler shards, and graceful degradation of the effective batch
// ceiling as devices die.
//
// Bit-identity rests on the call-reservation keying of the compiled batch
// path (see nn/shard.go and DESIGN.md): a compiled plan consumes a fixed
// stride of engine call indices per sample, and every readout-noise and
// fault substream is keyed by (seed, call index). The pool keeps ONE
// logical call frontier; a request of n samples reserves n*stride indices,
// and the shard covering samples [a,b) aligns its device's counter to
// base + a*stride before executing. Any same-seed device therefore draws
// exactly the substreams one engine serving the whole sequence would have
// drawn, so sharding — and hedged duplicate execution — is invisible in
// results.
package pool

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"photofourier/internal/backend"
	"photofourier/internal/nn"
	"photofourier/internal/tensor"
)

// Shard strategies (Options.Shard / the shard= spec key).
const (
	// ShardSample splits a request's samples across devices (the default):
	// throughput scales with pool size, batch-1 latency does not.
	ShardSample = "sample"
	// ShardChannel splits every layer's output channels across devices and
	// merges partial activations — intra-sample parallelism that cuts
	// batch-1 latency. Requires a homogeneous pool and channel-shardable
	// plans (see nn.ChannelShardSteps).
	ShardChannel = "channel"
	// ShardPipeline assigns contiguous layer stages to devices and streams
	// samples through them — sample i runs stage l while sample i+1 runs
	// stage l-1, within one request and across concurrent requests.
	ShardPipeline = "pipeline"
)

// Typed sentinel errors; test with errors.Is.
var (
	// ErrPoolExhausted marks a request that found zero live devices: every
	// device in the pool is quarantined. It wraps the last device error, so
	// errors.Is against core.ErrDeviceFault keeps working.
	ErrPoolExhausted = errors.New("pool: no live devices")
	// ErrPoolClosed marks a ForwardBatch call on a closed pool.
	ErrPoolClosed = errors.New("pool: closed")
	// ErrBadPool marks invalid pool options or an unusable device spec,
	// rejected once by New.
	ErrBadPool = errors.New("pool: bad configuration")
)

// Options configures a DevicePool. The zero value of every field selects
// its default; New validates once.
type Options struct {
	// Specs are the backend specs of the pool's devices, one device per
	// entry (possibly heterogeneous, each with its own fault= injector and
	// seed). Required.
	Specs []string
	// MaxShards caps how many shards one ForwardBatch splits into
	// (default: pool size).
	MaxShards int
	// QuarantineThreshold is how many consecutive shard faults quarantine
	// a device (default 3).
	QuarantineThreshold int
	// ProbeInterval is the background probe cadence for quarantined
	// devices (default 50ms).
	ProbeInterval time.Duration
	// Hedge enables straggler re-dispatch: when a shard outlives the hedge
	// delay, a duplicate runs on the healthiest idle device and the first
	// result wins.
	Hedge bool
	// HedgeDelay fixes the hedge delay. 0 (the default) derives it from
	// the observed shard-latency p99 times HedgeFactor once enough shards
	// have completed.
	HedgeDelay time.Duration
	// HedgeFactor scales the p99-derived hedge delay (default 3).
	HedgeFactor float64
	// MinHedge floors the derived hedge delay (default 500µs).
	MinHedge time.Duration

	// Shard selects the execution strategy: ShardSample (default),
	// ShardChannel, or ShardPipeline.
	Shard string
	// Debug enables the scheduling decision log: one line per device/shard
	// assignment, written to DecisionLog.
	Debug bool
	// DecisionLog receives decision-log lines when Debug is set (default
	// os.Stderr). Writes are serialized by the pool.
	DecisionLog io.Writer

	// Test seams (package-internal): deterministic clock and timer.
	now   func() time.Time
	after func(time.Duration) <-chan time.Time
}

func (o Options) validate() error {
	if len(o.Specs) == 0 {
		return fmt.Errorf("%w: need at least one device spec", ErrBadPool)
	}
	if o.MaxShards < 0 || o.QuarantineThreshold < 0 || o.ProbeInterval < 0 ||
		o.HedgeDelay < 0 || o.HedgeFactor < 0 || o.MinHedge < 0 {
		return fmt.Errorf("%w: negative option", ErrBadPool)
	}
	switch o.Shard {
	case "", ShardSample, ShardChannel, ShardPipeline:
	default:
		return fmt.Errorf("%w: unknown shard strategy %q (want %s|%s|%s)",
			ErrBadPool, o.Shard, ShardSample, ShardChannel, ShardPipeline)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.MaxShards < 1 {
		o.MaxShards = len(o.Specs)
	}
	if o.QuarantineThreshold < 1 {
		o.QuarantineThreshold = 3
	}
	if o.ProbeInterval < 1 {
		o.ProbeInterval = 50 * time.Millisecond
	}
	if o.HedgeFactor <= 0 {
		o.HedgeFactor = 3
	}
	if o.MinHedge < 1 {
		o.MinHedge = 500 * time.Microsecond
	}
	if o.Shard == "" {
		o.Shard = ShardSample
	}
	if o.Debug && o.DecisionLog == nil {
		o.DecisionLog = os.Stderr
	}
	if o.now == nil {
		o.now = time.Now
	}
	if o.after == nil {
		o.after = time.After
	}
	return o
}

// hedgeWarmup is how many shard latencies must be observed before a
// p99-derived hedge delay is trusted.
const hedgeWarmup = 16

// latencyRingSize bounds the shard-latency history the p99 is derived from.
const latencyRingSize = 128

// DevicePool is a farm of registry-opened engines, each carrying its own
// compiled plan of one shared source network, with a sample-sharding
// scheduler on top. It is safe for concurrent ForwardBatch calls.
type DevicePool struct {
	net    *nn.Network
	opts   Options
	devs   []*device
	stride uint64 // engine call indices per sample (0: nothing keyed)
	spec   string // canonical pool spec (Open) or synthesized (New)

	// calls is the pool's logical call frontier: the single counter a
	// lone engine serving every sample in order would have.
	calls atomic.Uint64

	// batchInvariant caches whether every device is noise-free (so
	// co-batching and sharding are invisible for capability queries).
	batchInvariant bool

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	// canary is a copy of the first sample ever served, reused by the
	// background probe of quarantined devices.
	canary *tensor.Tensor
	// ring holds recent shard latencies (ns) for the p99 hedge delay;
	// ringI is the write cursor, ringN the filled count.
	ring  [latencyRingSize]float64
	ringI int
	ringN int

	// intraMu serializes channel-sharded requests, which occupy every live
	// device in lockstep (pipelined and sample-sharded requests run
	// concurrently and never take it).
	intraMu sync.Mutex
	// pipeMu guards the cached pipeline stage assignment and the per-shape
	// step metadata/cost cache. Lock order: pipeMu before mu.
	pipeMu    sync.Mutex
	pipe      *pipeAssign
	pipeMetas map[[3]int]*pipeShape
	// logMu serializes decision-log writes.
	logMu sync.Mutex

	stop      chan struct{}
	probeDone chan struct{}

	requests    atomic.Uint64
	shardsN     atomic.Uint64
	hedges      atomic.Uint64
	hedgeWins   atomic.Uint64
	quarantines atomic.Uint64
	readmits    atomic.Uint64
	probes      atomic.Uint64
	exhausted   atomic.Uint64
}

// New opens one engine per spec, compiles net onto each, and starts the
// background probe loop. The pool owns the engines; callers must Close it.
func New(net *nn.Network, opts Options) (*DevicePool, error) {
	if net == nil {
		return nil, fmt.Errorf("%w: nil network", ErrBadPool)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	p := &DevicePool{
		net:            net,
		opts:           opts.withDefaults(),
		batchInvariant: true,
		stop:           make(chan struct{}),
		probeDone:      make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	for i, spec := range p.opts.Specs {
		eng, err := backend.Open(spec)
		if err != nil {
			return nil, fmt.Errorf("%w: device %d spec %q: %v", ErrBadPool, i, spec, err)
		}
		plan, err := net.Compile(eng)
		if err != nil {
			return nil, fmt.Errorf("%w: device %d spec %q: compile: %v", ErrBadPool, i, spec, err)
		}
		stride, ok := plan.KeyedCallsPerSample()
		noisy := nn.CapabilitiesOf(plan.Engine()).Noisy
		if !ok && noisy {
			return nil, fmt.Errorf("%w: device %d spec %q: plan contains an opaque module, cannot shard a noisy substrate bit-identically", ErrBadPool, i, spec)
		}
		if stride > 0 {
			if p.stride > 0 && stride != p.stride {
				return nil, fmt.Errorf("%w: device %d spec %q: call stride %d differs from pool stride %d", ErrBadPool, i, spec, stride, p.stride)
			}
			p.stride = stride
		}
		if noisy {
			p.batchInvariant = false
		}
		p.devs = append(p.devs, &device{id: i, spec: eng.String(), plan: plan, state: stateLive})
	}
	if p.opts.Shard == ShardChannel {
		for _, d := range p.devs {
			if d.spec != p.devs[0].spec {
				return nil, fmt.Errorf("%w: shard=channel needs a homogeneous pool: device %d spec %q differs from %q (every device must hold the full weight set and seed)",
					ErrBadPool, d.id, d.spec, p.devs[0].spec)
			}
			steps, err := d.plan.ChannelShardSteps()
			if err != nil {
				return nil, fmt.Errorf("%w: shard=channel: device %d: %v", ErrBadPool, d.id, err)
			}
			d.chanSteps = steps
		}
	}
	p.spec = synthesizeSpec(p.opts)
	go p.probeLoop()
	return p, nil
}

// logf emits one scheduling decision-log line (no-op unless Options.Debug).
func (p *DevicePool) logf(format string, args ...any) {
	if !p.opts.Debug || p.opts.DecisionLog == nil {
		return
	}
	p.logMu.Lock()
	fmt.Fprintf(p.opts.DecisionLog, "pool: decision "+format+"\n", args...)
	p.logMu.Unlock()
}

// Source returns the pool's shared network — the serve layer recompiles a
// failover standby from it.
func (p *DevicePool) Source() *nn.Network { return p.net }

// BatchInvariant reports whether a sample's result is independent of its
// co-batched neighbors and of sharding: true when every device is a
// noise-free substrate.
func (p *DevicePool) BatchInvariant() bool { return p.batchInvariant }

// Spec returns the pool's canonical spec string.
func (p *DevicePool) Spec() string { return p.spec }

// Size returns the total number of devices, live or quarantined.
func (p *DevicePool) Size() int { return len(p.devs) }

// Live returns how many devices are currently in rotation.
func (p *DevicePool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.liveLocked()
}

func (p *DevicePool) liveLocked() int {
	n := 0
	for _, d := range p.devs {
		if d.state == stateLive {
			n++
		}
	}
	return n
}

// EffectiveBatch scales a configured batch ceiling by the live fraction of
// the pool (never below 1) — the graceful-degradation contract: a shrunken
// pool serves smaller batches instead of queueing the same load onto fewer
// devices. The serve layer consults this for its micro-batch ceiling.
func (p *DevicePool) EffectiveBatch(configured int) int {
	if configured < 1 {
		return 1
	}
	eb := configured * p.Live() / len(p.devs)
	if eb < 1 {
		eb = 1
	}
	return eb
}

// Counters is a point-in-time snapshot of the pool's scheduling counters.
type Counters struct {
	// Requests counts ForwardBatch calls; Shards counts logical shards
	// dispatched (retries and hedges are visible in device rows).
	Requests, Shards uint64
	// Hedges counts duplicate shard dispatches; HedgeWins counts the ones
	// whose duplicate finished first. The loser's shots are real
	// illuminations and stay in the global jtc shot accounting.
	Hedges, HedgeWins uint64
	// Quarantines / Readmits / Probes count the device state machine's
	// transitions and background canary probes.
	Quarantines, Readmits, Probes uint64
	// Exhausted counts requests refused because zero devices were live.
	Exhausted uint64
}

// Counters returns the pool's scheduling counters.
func (p *DevicePool) Counters() Counters {
	return Counters{
		Requests:    p.requests.Load(),
		Shards:      p.shardsN.Load(),
		Hedges:      p.hedges.Load(),
		HedgeWins:   p.hedgeWins.Load(),
		Quarantines: p.quarantines.Load(),
		Readmits:    p.readmits.Load(),
		Probes:      p.probes.Load(),
		Exhausted:   p.exhausted.Load(),
	}
}

// Close stops the probe loop and refuses further ForwardBatch calls.
// In-flight requests must drain before Close (the serve layer's Close does
// this); probes in flight finish.
func (p *DevicePool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	close(p.stop)
	<-p.probeDone
}

func (p *DevicePool) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// ForwardBatch runs one NCHW batch with the single-engine per-sample batch
// contract: results are bit-identical to one engine of the devices' spec
// serving every request in order, including keyed readout noise — sample
// sharding, device choice, retries, and hedged duplicates are all invisible
// in the output. Shards fail over across live devices; the request errors
// only when a shard has exhausted every live device (ErrPoolExhausted when
// none remain at all).
func (p *DevicePool) ForwardBatch(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x == nil || x.Rank() != 4 {
		return nil, fmt.Errorf("pool: %w: ForwardBatch wants NCHW input", nn.ErrShapeMismatch)
	}
	n := x.Shape[0]
	if n < 1 {
		return nil, fmt.Errorf("pool: %w: empty batch", nn.ErrShapeMismatch)
	}
	if p.isClosed() {
		return nil, ErrPoolClosed
	}
	req := p.requests.Add(1)
	p.ensureCanary(x)
	// Reserve the request's call block on the logical frontier exactly as
	// the single-engine ForwardBatch would have.
	base := p.calls.Add(uint64(n)*p.stride) - uint64(n)*p.stride
	switch p.opts.Shard {
	case ShardChannel:
		return p.forwardChannel(x, base, req)
	case ShardPipeline:
		return p.forwardPipeline(x, base, req)
	}
	live := p.Live()
	if live == 0 {
		p.exhausted.Add(1)
		return nil, p.exhaustedErr(nil)
	}
	shards := min(live, n, p.opts.MaxShards)
	order := p.stripeOrder(shards)
	c, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	perSample := c * h * w
	type shardOut struct {
		lo  int
		out *tensor.Tensor
		err error
	}
	results := make([]shardOut, shards)
	var wg sync.WaitGroup
	per, rem, lo := n/shards, n%shards, 0
	for i := 0; i < shards; i++ {
		m := per
		if i < rem {
			m++
		}
		hi := lo + m
		view := &tensor.Tensor{Shape: []int{m, c, h, w}, Data: x.Data[lo*perSample : hi*perSample]}
		var hint *device
		if i < len(order) {
			hint = order[i]
		}
		wg.Add(1)
		go func(i, lo int, view *tensor.Tensor, hint *device) {
			defer wg.Done()
			out, err := p.runShard(req, base, lo, view, hint)
			results[i] = shardOut{lo: lo, out: out, err: err}
		}(i, lo, view, hint)
		lo = hi
	}
	wg.Wait()
	p.shardsN.Add(uint64(shards))
	var out *tensor.Tensor
	rowLen := 0
	for _, r := range results {
		if r.err != nil {
			if errors.Is(r.err, ErrPoolExhausted) {
				p.exhausted.Add(1)
			}
			return nil, r.err
		}
		if out == nil {
			shape := append([]int{n}, r.out.Shape[1:]...)
			out = tensor.New(shape...)
			rowLen = r.out.Size() / r.out.Shape[0]
		}
		copy(out.Data[r.lo*rowLen:], r.out.Data)
	}
	return out, nil
}

// ensureCanary keeps a copy of the first sample served, for probing.
func (p *DevicePool) ensureCanary(x *tensor.Tensor) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.canary != nil {
		return
	}
	c, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	p.canary = tensor.New(1, c, h, w)
	copy(p.canary.Data, x.Data[:c*h*w])
}

func (p *DevicePool) exhaustedErr(last error) error {
	if last == nil {
		p.mu.Lock()
		for _, d := range p.devs {
			if d.lastErr != nil {
				last = d.lastErr
			}
		}
		p.mu.Unlock()
	}
	if last != nil {
		return fmt.Errorf("%w (last device error: %w)", ErrPoolExhausted, last)
	}
	return ErrPoolExhausted
}

type shardResult struct {
	out *tensor.Tensor
	err error
}

// runShard executes samples [lo, lo+m) of the request's call block,
// retrying across live devices (each at most once) and hedging stragglers.
// The first attempt honors the dispatch-time stripe hint; retries fall back
// to the scored acquire.
func (p *DevicePool) runShard(req, base uint64, lo int, view *tensor.Tensor, hint *device) (*tensor.Tensor, error) {
	tried := make(map[*device]bool)
	var lastErr error
	for {
		d := p.acquireHinted(hint, tried)
		hint = nil
		if d == nil {
			break
		}
		tried[d] = true
		out, err := p.runHedged(req, d, tried, base, lo, view)
		if err == nil {
			return out, nil
		}
		lastErr = err
	}
	if p.isClosed() {
		return nil, ErrPoolClosed
	}
	if p.Live() == 0 {
		return nil, p.exhaustedErr(lastErr)
	}
	return nil, fmt.Errorf("pool: shard failed on every live device: %w", lastErr)
}

// runHedged runs one shard attempt on d, dispatching a duplicate to the
// healthiest idle device if d outlives the hedge delay. The first result
// wins; a first result that is an error waits for the duplicate instead of
// discarding it. The loser is not interrupted — its shots are real and stay
// counted — but its result is dropped.
func (p *DevicePool) runHedged(req uint64, d *device, tried map[*device]bool, base uint64, lo int, view *tensor.Tensor) (*tensor.Tensor, error) {
	primary := make(chan shardResult, 1)
	go p.execOn(req, d, base, lo, view, primary)
	delay := p.hedgeDelay()
	if delay <= 0 {
		r := <-primary
		return r.out, r.err
	}
	var hedge chan shardResult
	select {
	case r := <-primary:
		return r.out, r.err
	case <-p.opts.after(delay):
		h := p.acquireIdle(tried)
		if h == nil {
			r := <-primary
			return r.out, r.err
		}
		tried[h] = true
		p.hedges.Add(1)
		hedge = make(chan shardResult, 1)
		go p.execOn(req, h, base, lo, view, hedge)
	}
	select {
	case r := <-primary:
		if r.err == nil {
			return r.out, nil
		}
		r2 := <-hedge
		if r2.err == nil {
			p.hedgeWins.Add(1)
			return r2.out, nil
		}
		return nil, r.err
	case r := <-hedge:
		if r.err == nil {
			p.hedgeWins.Add(1)
			return r.out, nil
		}
		r2 := <-primary
		if r2.err == nil {
			return r2.out, nil
		}
		return nil, r2.err
	}
}

// execOn aligns d's engine counter to the shard's call block and runs it.
// The device lock serializes alignment and execution — one shard occupies
// one physical device at a time, which is what makes alignment sound.
func (p *DevicePool) execOn(req uint64, d *device, base uint64, lo int, view *tensor.Tensor, ch chan<- shardResult) {
	p.logf("req=%d mode=sample dev=%d base=%d samples=[%d,%d)", req, d.id, base, lo, lo+view.Shape[0])
	d.run.Lock()
	start := time.Now()
	d.plan.AlignEngineCalls(base + uint64(lo)*p.stride)
	out, err := d.plan.ForwardBatch(view)
	elapsed := time.Since(start)
	d.run.Unlock()
	p.noteShard(d, view.Shape[0], elapsed, err)
	ch <- shardResult{out: out, err: err}
}

// hedgeDelay returns the current hedge delay: the configured override, or
// HedgeFactor times the observed shard-latency p99 (floored by MinHedge)
// once hedgeWarmup shards have completed. 0 disables hedging for this
// shard.
func (p *DevicePool) hedgeDelay() time.Duration {
	if !p.opts.Hedge {
		return 0
	}
	if p.opts.HedgeDelay > 0 {
		return p.opts.HedgeDelay
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ringN < hedgeWarmup {
		return 0
	}
	n := min(p.ringN, latencyRingSize)
	lat := make([]float64, n)
	copy(lat, p.ring[:n])
	sort.Float64s(lat)
	p99 := lat[(n*99)/100]
	d := time.Duration(p99 * p.opts.HedgeFactor)
	if d < p.opts.MinHedge {
		d = p.opts.MinHedge
	}
	return d
}
