package pool

// Intra-sample strategies: the channel-shard golden matrix (bit-identity
// to one engine across substrates, pool sizes, and nets — including keyed
// readout noise), the pipelined golden sequence, and the -race hammer
// with a mid-stream device outage.

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"photofourier/internal/backend"
	"photofourier/internal/nn"
	"photofourier/internal/tensor"
)

func assertSameData(t *testing.T, name string, r int, want, got *tensor.Tensor) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("%s: request %d: size %d vs %d", name, r, len(got.Data), len(want.Data))
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: request %d diverged at %d: %v vs %v", name, r, i, got.Data[i], want.Data[i])
		}
	}
}

// TestChannelShardGoldenMatchesSingleEngine is the channel-shard
// acceptance matrix: {direct, tiled, noisy} substrates × pool {2,4} ×
// {SmallCNN, AlexNetS}, requests of batch 1 and 5, all bit-identical to
// one engine serving the same sequence. The combined-scale exchange and
// the skip-ahead readout substreams must be invisible.
func TestChannelShardGoldenMatchesSingleEngine(t *testing.T) {
	specs := []string{
		"accelerator?workers=1",
		"accelerator?tiled=true,workers=1",
		"accelerator-noisy?workers=1",
	}
	batches := []int{1, 5}
	for _, net := range poolNets() {
		for _, spec := range specs {
			eng, err := backend.Open(spec)
			if err != nil {
				t.Fatal(err)
			}
			single, err := net.Compile(eng)
			if err != nil {
				t.Fatal(err)
			}
			var wants []*tensor.Tensor
			for r, n := range batches {
				w, err := single.ForwardBatch(poolBatch(int64(300+r), n))
				if err != nil {
					t.Fatal(err)
				}
				wants = append(wants, w)
			}
			for _, size := range []int{2, 4} {
				name := fmt.Sprintf("%s/%s/shard=channel/size=%d", net.Name, spec, size)
				p := mustPool(t, net, Options{Specs: repeatSpec(spec, size), Shard: ShardChannel})
				for r, n := range batches {
					got, err := p.ForwardBatch(poolBatch(int64(300+r), n))
					if err != nil {
						t.Fatalf("%s: request %d: %v", name, r, err)
					}
					assertSameData(t, name, r, wants[r], got)
				}
				p.Close()
			}
		}
	}
}

// TestPipelineGoldenMatchesSingleEngine: staged execution with per-stage
// counter alignment serves a request sequence bit-identically to one
// engine, including the noisy substrate where every draw is keyed.
func TestPipelineGoldenMatchesSingleEngine(t *testing.T) {
	specs := []string{
		"accelerator?workers=1",
		"accelerator-noisy?workers=1",
	}
	batches := []int{1, 4, 2}
	for _, net := range poolNets() {
		for _, spec := range specs {
			eng, err := backend.Open(spec)
			if err != nil {
				t.Fatal(err)
			}
			single, err := net.Compile(eng)
			if err != nil {
				t.Fatal(err)
			}
			var wants []*tensor.Tensor
			for r, n := range batches {
				w, err := single.ForwardBatch(poolBatch(int64(700+r), n))
				if err != nil {
					t.Fatal(err)
				}
				wants = append(wants, w)
			}
			for _, size := range []int{2, 4} {
				name := fmt.Sprintf("%s/%s/shard=pipeline/size=%d", net.Name, spec, size)
				p := mustPool(t, net, Options{Specs: repeatSpec(spec, size), Shard: ShardPipeline})
				for r, n := range batches {
					got, err := p.ForwardBatch(poolBatch(int64(700+r), n))
					if err != nil {
						t.Fatalf("%s: request %d: %v", name, r, err)
					}
					assertSameData(t, name, r, wants[r], got)
				}
				p.Close()
			}
		}
	}
}

// TestPipelineHammerMidStreamOutage is the pipelined chaos hammer: 64
// concurrent batch-1 requests stream through a 4-device pipeline whose
// last device dies mid-stream (call-indexed outage). Every request must
// complete bit-exactly — stage faults re-partition and resume from the
// sample's current step — and the dead device must end up quarantined.
// Run under -race (the pool race dir covers this package in CI).
func TestPipelineHammerMidStreamOutage(t *testing.T) {
	net := nn.SmallCNN([2]int{4, 8}, 10, 99)
	healthy := "accelerator?workers=1"
	dying := "accelerator?workers=1,fault=outage:30,faultseed=3"
	eng, err := backend.Open(healthy)
	if err != nil {
		t.Fatal(err)
	}
	single, err := net.Compile(eng)
	if err != nil {
		t.Fatal(err)
	}
	p := mustPool(t, net, Options{
		Specs:               append(repeatSpec(healthy, 3), dying),
		Shard:               ShardPipeline,
		QuarantineThreshold: 1,
		ProbeInterval:       time.Millisecond,
	})
	const requests = 64
	wants := make([]*tensor.Tensor, requests)
	for r := range wants {
		w, err := single.ForwardBatch(poolBatch(int64(900+r), 1))
		if err != nil {
			t.Fatal(err)
		}
		wants[r] = w
	}
	var wg sync.WaitGroup
	errs := make([]error, requests)
	gots := make([]*tensor.Tensor, requests)
	for r := 0; r < requests; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			gots[r], errs[r] = p.ForwardBatch(poolBatch(int64(900+r), 1))
		}(r)
	}
	wg.Wait()
	for r := 0; r < requests; r++ {
		if errs[r] != nil {
			t.Fatalf("request %d failed: %v", r, errs[r])
		}
		assertSameData(t, "pipeline-hammer", r, wants[r], gots[r])
	}
	rows := p.DeviceHealth()
	if rows[3].State != "quarantined" {
		t.Fatalf("dying device not quarantined: %+v", rows[3])
	}
	if p.Live() != 3 {
		t.Fatalf("live %d, want 3", p.Live())
	}
}

// TestChannelShardDeviceOutageDegrades: with a homogeneous channel-shard
// pool, an outage fails the request (the serve ladder retries), the
// device quarantines, and subsequent requests succeed on the surviving
// devices with unchanged results.
func TestChannelShardDeviceOutageDegrades(t *testing.T) {
	net := nn.SmallCNN([2]int{4, 8}, 10, 99)
	spec := "accelerator?workers=1,fault=outage:8,faultseed=3"
	p := mustPool(t, net, Options{
		Specs:               repeatSpec(spec, 3),
		Shard:               ShardChannel,
		QuarantineThreshold: 1,
		ProbeInterval:       time.Hour, // outage devices never readmit anyway
	})
	var sawErr bool
	for r := 0; r < 6; r++ {
		_, err := p.ForwardBatch(poolBatch(int64(40+r), 1))
		if err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("outage at call 8 never surfaced over 6 requests")
	}
	if q := p.Counters().Quarantines; q == 0 {
		t.Fatal("faulting devices were never quarantined")
	}
}

// TestChannelShardRejectsHeterogeneousPool: channel ranges of one logical
// engine only make sense when every device holds the same weights, seed,
// and operating point.
func TestChannelShardRejectsHeterogeneousPool(t *testing.T) {
	net := nn.SmallCNN([2]int{4, 8}, 10, 99)
	_, err := New(net, Options{
		Specs: []string{"accelerator?workers=1", "accelerator?tiled=true,workers=1"},
		Shard: ShardChannel,
	})
	if !errors.Is(err, ErrBadPool) {
		t.Fatalf("heterogeneous channel pool: err %v, want ErrBadPool", err)
	}
	if _, err := New(net, Options{Specs: []string{"accelerator"}, Shard: "bogus"}); !errors.Is(err, ErrBadPool) {
		t.Fatalf("bogus shard strategy: err %v, want ErrBadPool", err)
	}
}

// TestDecisionLog: the debug flag emits one greppable line per
// device/shard assignment for every strategy.
func TestDecisionLog(t *testing.T) {
	net := nn.SmallCNN([2]int{4, 8}, 10, 99)
	for _, tc := range []struct {
		shard string
		want  []string
	}{
		{ShardSample, []string{"mode=sample", "dev=", "samples=["}},
		{ShardChannel, []string{"mode=channel", "oc=[", "first="}},
		{ShardPipeline, []string{"mode=pipeline", "stages=[", "steps=["}},
	} {
		var buf bytes.Buffer
		var mu sync.Mutex
		w := writerFunc(func(b []byte) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			return buf.Write(b)
		})
		p := mustPool(t, net, Options{
			Specs:       repeatSpec("accelerator?workers=1", 2),
			Shard:       tc.shard,
			Debug:       true,
			DecisionLog: w,
		})
		if _, err := p.ForwardBatch(poolBatch(7, 2)); err != nil {
			t.Fatalf("shard=%s: %v", tc.shard, err)
		}
		p.Close()
		mu.Lock()
		log := buf.String()
		mu.Unlock()
		for _, needle := range tc.want {
			if !strings.Contains(log, needle) {
				t.Errorf("shard=%s: decision log misses %q:\n%s", tc.shard, needle, log)
			}
		}
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(b []byte) (int, error) { return f(b) }

// TestStageBounds pins the partitioner: contiguous, non-empty stages
// minimizing the bottleneck.
func TestStageBounds(t *testing.T) {
	for _, tc := range []struct {
		costs  []float64
		stages int
		want   []int
	}{
		{[]float64{4, 0, 0, 2, 0, 2}, 2, []int{0, 1, 6}},
		{[]float64{1, 1, 1, 1}, 2, []int{0, 2, 4}},
		{[]float64{5, 1, 1, 1}, 4, []int{0, 1, 2, 3, 4}},
		{[]float64{3, 3}, 8, []int{0, 1, 2}},
	} {
		got := StageBounds(tc.costs, tc.stages)
		if len(got) != len(tc.want) {
			t.Fatalf("StageBounds(%v, %d) = %v, want %v", tc.costs, tc.stages, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("StageBounds(%v, %d) = %v, want %v", tc.costs, tc.stages, got, tc.want)
			}
		}
	}
}

// TestSplitChannels pins the channel split: contiguous, near-even, never
// more parts than channels.
func TestSplitChannels(t *testing.T) {
	for _, tc := range []struct {
		cout, parts int
		want        [][2]int
	}{
		{8, 4, [][2]int{{0, 2}, {2, 4}, {4, 6}, {6, 8}}},
		{7, 2, [][2]int{{0, 3}, {3, 7}}},
		{3, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{5, 1, [][2]int{{0, 5}}},
	} {
		got := SplitChannels(tc.cout, tc.parts)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Fatalf("SplitChannels(%d, %d) = %v, want %v", tc.cout, tc.parts, got, tc.want)
		}
	}
}
