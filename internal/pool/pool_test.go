package pool

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"photofourier/internal/backend"
	"photofourier/internal/fault"
	"photofourier/internal/nn"
	"photofourier/internal/tensor"
)

func poolNets() []*nn.Network {
	return []*nn.Network{
		nn.SmallCNN([2]int{4, 8}, 10, 99),
		nn.AlexNetS(10, 99),
	}
}

func poolBatch(seed int64, n int) *tensor.Tensor {
	x := tensor.New(n, 3, 16, 16)
	x.RandN(rand.New(rand.NewSource(seed)), 1)
	return x
}

func repeatSpec(spec string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = spec
	}
	return out
}

// waitDeviceShards blocks until the pool's devices have completed at least
// want shard attempts in total (hedge losers finish asynchronously).
func waitDeviceShards(t *testing.T, p *DevicePool, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var total uint64
		for _, row := range p.DeviceHealth() {
			total += row.Shards
		}
		if total >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("devices completed %d shard attempts, want >= %d", total, want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func mustPool(t *testing.T, net *nn.Network, opts Options) *DevicePool {
	t.Helper()
	p, err := New(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// TestPoolGoldenMatchesSingleEngine is the sharding acceptance matrix: a
// pool of same-spec devices serving a sequence of batched requests is
// bit-identical to ONE engine of that spec serving the same sequence —
// including the noisy operating point, whose readout substreams are keyed
// by call index. Pool size, shard boundaries, and device choice must all be
// invisible.
func TestPoolGoldenMatchesSingleEngine(t *testing.T) {
	specs := []string{
		"accelerator?workers=1",
		"accelerator?tiled=true,workers=1",
		"accelerator-noisy?workers=1",
	}
	batches := []int{1, 5, 8}
	for _, net := range poolNets() {
		for _, spec := range specs {
			// One reference engine serving every request in order.
			eng, err := backend.Open(spec)
			if err != nil {
				t.Fatal(err)
			}
			single, err := net.Compile(eng)
			if err != nil {
				t.Fatal(err)
			}
			var wants []*tensor.Tensor
			for r, n := range batches {
				w, err := single.ForwardBatch(poolBatch(int64(100+r), n))
				if err != nil {
					t.Fatal(err)
				}
				wants = append(wants, w)
			}
			for _, size := range []int{1, 2, 4} {
				name := fmt.Sprintf("%s/%s/size=%d", net.Name, spec, size)
				p := mustPool(t, net, Options{Specs: repeatSpec(spec, size)})
				for r, n := range batches {
					got, err := p.ForwardBatch(poolBatch(int64(100+r), n))
					if err != nil {
						t.Fatalf("%s: request %d: %v", name, r, err)
					}
					want := wants[r]
					if len(got.Data) != len(want.Data) {
						t.Fatalf("%s: request %d: size %d vs %d", name, r, len(got.Data), len(want.Data))
					}
					for i := range want.Data {
						if got.Data[i] != want.Data[i] {
							t.Fatalf("%s: request %d diverged at %d: %v vs %v", name, r, i, got.Data[i], want.Data[i])
						}
					}
				}
				p.Close()
			}
		}
	}
}

// TestPoolStride pins the sharding stride to the networks' engine-backed
// layer counts — the quantity the keying proof rests on.
func TestPoolStride(t *testing.T) {
	for _, tc := range []struct {
		net    *nn.Network
		stride uint64
	}{
		{nn.SmallCNN([2]int{4, 8}, 10, 99), 2},
		{nn.AlexNetS(10, 99), 3},
	} {
		p := mustPool(t, tc.net, Options{Specs: repeatSpec("accelerator?workers=1", 2)})
		if p.stride != tc.stride {
			t.Errorf("%s: stride %d, want %d", tc.net.Name, p.stride, tc.stride)
		}
		if p.BatchInvariant() != true {
			t.Errorf("%s: noise-free pool must be batch-invariant", tc.net.Name)
		}
		p.Close()
	}
}

// TestPoolChaosOutageMidRun is the chaos acceptance scenario: one of four
// devices dies mid-run (call-indexed outage on the shared logical
// frontier). Every request must complete with bit-exact results, and the
// dead device must end up quarantined while the pool keeps serving.
func TestPoolChaosOutageMidRun(t *testing.T) {
	net := nn.SmallCNN([2]int{4, 8}, 10, 99)
	healthy := "accelerator?workers=1"
	dying := "accelerator?workers=1,fault=outage:30,faultseed=3"
	eng, err := backend.Open(healthy)
	if err != nil {
		t.Fatal(err)
	}
	single, err := net.Compile(eng)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 1: the health score already steers shards away from a
	// faulted device, so on one CPU it may never accumulate a longer
	// consecutive-fault run — one outage fault is enough evidence here.
	p := mustPool(t, net, Options{
		Specs:               append(repeatSpec(healthy, 3), dying),
		QuarantineThreshold: 1,
		ProbeInterval:       time.Millisecond,
	})
	const requests, batch = 24, 6
	for r := 0; r < requests; r++ {
		x := poolBatch(int64(500+r), batch)
		want, err := single.ForwardBatch(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.ForwardBatch(x)
		if err != nil {
			t.Fatalf("request %d: %v", r, err)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("request %d diverged at %d", r, i)
			}
		}
	}
	rows := p.DeviceHealth()
	if rows[3].State != "quarantined" {
		t.Fatalf("dying device not quarantined: %+v", rows[3])
	}
	if rows[3].Faults == 0 {
		t.Fatalf("dying device shows no faults: %+v", rows[3])
	}
	c := p.Counters()
	if c.Quarantines == 0 || c.Exhausted != 0 {
		t.Fatalf("counters: %+v", c)
	}
	if p.Live() != 3 {
		t.Fatalf("live %d, want 3", p.Live())
	}
	if eb := p.EffectiveBatch(8); eb != 6 {
		t.Fatalf("EffectiveBatch(8) = %d with 3/4 live, want 6", eb)
	}
}

// TestPoolConcurrentChaos hammers a pool (one device dying mid-run) from
// many goroutines; every request must complete with zero wrong answers —
// verified against per-request single-engine results, which is exact
// because the substrate is noise-free.
func TestPoolConcurrentChaos(t *testing.T) {
	net := nn.SmallCNN([2]int{4, 8}, 10, 99)
	healthy := "accelerator?workers=1"
	eng, err := backend.Open(healthy)
	if err != nil {
		t.Fatal(err)
	}
	single, err := net.Compile(eng)
	if err != nil {
		t.Fatal(err)
	}
	p := mustPool(t, net, Options{
		Specs:               append(repeatSpec(healthy, 3), "accelerator?workers=1,fault=outage:20,faultseed=9"),
		QuarantineThreshold: 1,
		ProbeInterval:       time.Millisecond,
	})
	const clients, perClient = 4, 6
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				n := 1 + (c+r)%4
				x := poolBatch(int64(c*100+r), n)
				got, err := p.ForwardBatch(x)
				if err != nil {
					t.Errorf("client %d request %d: %v", c, r, err)
					return
				}
				want, err := single.ForwardBatch(x)
				if err != nil {
					t.Errorf("client %d request %d reference: %v", c, r, err)
					return
				}
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Errorf("client %d request %d wrong answer at %d", c, r, i)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if c := p.Counters(); c.Exhausted != 0 {
		t.Fatalf("requests exhausted: %+v", c)
	}
}

// TestPoolExhausted: when every device is dead and quarantined, a request
// fails with ErrPoolExhausted still carrying the device-fault chain.
func TestPoolExhausted(t *testing.T) {
	net := nn.SmallCNN([2]int{4, 8}, 10, 99)
	p := mustPool(t, net, Options{
		Specs:               repeatSpec("accelerator?workers=1,fault=outage:1,faultseed=1", 2),
		QuarantineThreshold: 1,
	})
	_, err := p.ForwardBatch(poolBatch(1, 2))
	if !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err %v, want ErrPoolExhausted", err)
	}
	if !errors.Is(err, fault.ErrDeviceFault) {
		t.Fatalf("err %v lost the device-fault chain", err)
	}
	if p.Live() != 0 {
		t.Fatalf("live %d, want 0", p.Live())
	}
	if eb := p.EffectiveBatch(8); eb != 1 {
		t.Fatalf("EffectiveBatch(8) = %d with no live devices, want 1", eb)
	}
	// Second request fails fast on the empty pool.
	if _, err := p.ForwardBatch(poolBatch(2, 1)); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("empty-pool err %v, want ErrPoolExhausted", err)
	}
	if c := p.Counters(); c.Exhausted < 2 {
		t.Fatalf("exhausted counter %d, want >= 2", c.Exhausted)
	}
}

// TestPoolProbeReadmit exercises the probe/readmit half of the state
// machine deterministically: a healthy device is forced into quarantine,
// then one probe pass readmits it (canary succeeds) and it serves again.
func TestPoolProbeReadmit(t *testing.T) {
	net := nn.SmallCNN([2]int{4, 8}, 10, 99)
	p := mustPool(t, net, Options{
		Specs:         repeatSpec("accelerator?workers=1", 2),
		ProbeInterval: time.Hour, // probes only when invoked directly
	})
	if _, err := p.ForwardBatch(poolBatch(1, 2)); err != nil {
		t.Fatal(err) // also records the canary
	}
	p.mu.Lock()
	p.devs[1].state = stateQuarantined
	p.devs[1].consecFaults = 3
	p.mu.Unlock()
	if p.Live() != 1 {
		t.Fatalf("live %d, want 1", p.Live())
	}
	p.probeQuarantined()
	p.mu.Lock()
	state, faults := p.devs[1].state, p.devs[1].consecFaults
	p.mu.Unlock()
	if state != stateLive || faults != 0 {
		t.Fatalf("device not readmitted: state=%v consecFaults=%d", state, faults)
	}
	c := p.Counters()
	if c.Probes != 1 || c.Readmits != 1 {
		t.Fatalf("counters after readmit: %+v", c)
	}
	if _, err := p.ForwardBatch(poolBatch(2, 2)); err != nil {
		t.Fatalf("post-readmit request: %v", err)
	}
}

// TestPoolProbeKeepsDeadDeviceOut: a permanently dead device keeps failing
// its canary probes and never flaps back into rotation.
func TestPoolProbeKeepsDeadDeviceOut(t *testing.T) {
	net := nn.SmallCNN([2]int{4, 8}, 10, 99)
	p := mustPool(t, net, Options{
		Specs:               []string{"accelerator?workers=1", "accelerator?workers=1,fault=outage:1,faultseed=1"},
		QuarantineThreshold: 1,
		ProbeInterval:       time.Hour,
	})
	// Drive requests until the dead device has faulted and been quarantined.
	for r := 0; r < 4; r++ {
		if _, err := p.ForwardBatch(poolBatch(int64(r), 2)); err != nil {
			t.Fatalf("request %d: %v", r, err)
		}
	}
	if p.Live() != 1 {
		t.Fatalf("live %d after outage, want 1", p.Live())
	}
	for i := 0; i < 3; i++ {
		p.probeQuarantined()
	}
	if p.Live() != 1 {
		t.Fatal("dead device flapped back in despite failing probes")
	}
	rows := p.DeviceHealth()
	if rows[1].State != "quarantined" || rows[1].Probes != 3 || rows[1].Readmits != 0 {
		t.Fatalf("dead device row: %+v", rows[1])
	}
	if rows[1].LastError == "" {
		t.Fatalf("dead device should surface its last error: %+v", rows[1])
	}
}

// TestPoolHedgeDispatch forces the hedge path deterministically: the timer
// seam fires the hedge delay immediately, so the single shard of a
// one-sample request is re-dispatched to the idle second device before the
// primary finishes (on one CPU the primary goroutine cannot even have
// started). The duplicate is bit-identical, so whichever copy wins, the
// result matches the single-engine reference.
func TestPoolHedgeDispatch(t *testing.T) {
	net := nn.SmallCNN([2]int{4, 8}, 10, 99)
	spec := "accelerator?workers=1"
	eng, err := backend.Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	single, err := net.Compile(eng)
	if err != nil {
		t.Fatal(err)
	}
	hedgeDelay := 123 * time.Nanosecond
	opts := Options{
		Specs:      repeatSpec(spec, 2),
		MaxShards:  1,
		Hedge:      true,
		HedgeDelay: hedgeDelay,
		after: func(d time.Duration) <-chan time.Time {
			if d == hedgeDelay {
				ch := make(chan time.Time, 1)
				ch <- time.Time{}
				return ch
			}
			return make(chan time.Time) // probe loop: never fires
		},
	}
	p := mustPool(t, net, opts)
	for r := 0; r < 3; r++ {
		// The hedge loser finishes in the background and holds its device
		// until then; wait for both devices to drain so every request
		// finds an idle hedge target.
		waitDeviceShards(t, p, uint64(2*r))
		x := poolBatch(int64(40+r), 1)
		want, err := single.ForwardBatch(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.ForwardBatch(x)
		if err != nil {
			t.Fatalf("request %d: %v", r, err)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("hedged request %d diverged at %d", r, i)
			}
		}
	}
	waitDeviceShards(t, p, 6)
	c := p.Counters()
	if c.Hedges != 3 {
		t.Fatalf("hedges %d, want 3 (one per request)", c.Hedges)
	}
	// Both devices did real work: duplicate shots are counted, not hidden.
	rows := p.DeviceHealth()
	if rows[0].Shards+rows[1].Shards != 6 {
		t.Fatalf("shard attempts %d+%d, want 6 (3 primaries + 3 hedges)", rows[0].Shards, rows[1].Shards)
	}
}

// TestPoolHedgeRecoversFromDeadPrimary: when the primary shard lands on a
// dead device, the hedged duplicate on the healthy device answers the
// request — the error result loses to the clean one regardless of arrival
// order.
func TestPoolHedgeRecoversFromDeadPrimary(t *testing.T) {
	net := nn.SmallCNN([2]int{4, 8}, 10, 99)
	hedgeDelay := 123 * time.Nanosecond
	p := mustPool(t, net, Options{
		Specs:      []string{"accelerator?workers=1,fault=outage:1,faultseed=1", "accelerator?workers=1"},
		MaxShards:  1,
		Hedge:      true,
		HedgeDelay: hedgeDelay,
		after: func(d time.Duration) <-chan time.Time {
			if d == hedgeDelay {
				ch := make(chan time.Time, 1)
				ch <- time.Time{}
				return ch
			}
			return make(chan time.Time)
		},
	})
	for r := 0; r < 4; r++ {
		if _, err := p.ForwardBatch(poolBatch(int64(r), 1)); err != nil {
			t.Fatalf("request %d: %v", r, err)
		}
	}
	if c := p.Counters(); c.Exhausted != 0 {
		t.Fatalf("hedged requests exhausted: %+v", c)
	}
}

// TestPoolValidation pins New's rejection surface.
func TestPoolValidation(t *testing.T) {
	net := nn.SmallCNN([2]int{4, 8}, 10, 99)
	bad := []Options{
		{},
		{Specs: []string{"no-such-backend"}},
		{Specs: []string{"accelerator?nta=-3"}},
		{Specs: []string{"accelerator"}, MaxShards: -1},
		{Specs: []string{"accelerator"}, HedgeFactor: -1},
	}
	for _, opts := range bad {
		if _, err := New(net, opts); !errors.Is(err, ErrBadPool) {
			t.Errorf("New(%+v) err %v, want ErrBadPool", opts, err)
		}
	}
	if _, err := New(nil, Options{Specs: []string{"accelerator"}}); !errors.Is(err, ErrBadPool) {
		t.Errorf("nil network accepted: %v", err)
	}
}

// TestPoolClosed: ForwardBatch on a closed pool fails fast with
// ErrPoolClosed; Close is idempotent.
func TestPoolClosed(t *testing.T) {
	net := nn.SmallCNN([2]int{4, 8}, 10, 99)
	p, err := New(net, Options{Specs: []string{"accelerator?workers=1"}})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close()
	if _, err := p.ForwardBatch(poolBatch(1, 1)); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err %v, want ErrPoolClosed", err)
	}
}

// TestPoolHeterogeneousSpecs: devices of different specs still shard the
// noise-free contract correctly (results equal the single-engine reference
// of either spec when both are exact substrates at the same operating
// point is NOT generally true; what must hold is that every request
// completes and shapes are right).
func TestPoolHeterogeneousSpecs(t *testing.T) {
	net := nn.SmallCNN([2]int{4, 8}, 10, 99)
	p := mustPool(t, net, Options{
		Specs: []string{"accelerator?workers=1", "accelerator?tiled=true,workers=1"},
	})
	out, err := p.ForwardBatch(poolBatch(7, 4))
	if err != nil {
		t.Fatal(err)
	}
	if out.Shape[0] != 4 || out.Shape[1] != 10 {
		t.Fatalf("output shape %v, want [4 10]", out.Shape)
	}
}
