package photofourier_test

import (
	"context"
	"errors"
	"fmt"
	"log"

	"photofourier"
	"photofourier/internal/nn"
	"photofourier/internal/tensor"
)

// newExampleSample builds a deterministic CHW sample for the examples.
func newExampleSample() *tensor.Tensor {
	x := tensor.New(3, 16, 16)
	for i := range x.Data {
		x.Data[i] = float64(i%17)/17 - 0.5
	}
	return x
}

// Example_openBackend builds engines from spec strings: the backend name
// selects the substrate, ?key=val,... selects the operating point, and the
// opened engine reports its capabilities and canonical spec.
func Example_openBackend() {
	engine, err := photofourier.Open("accelerator?nta=4,adc=6,seed=7")
	if err != nil {
		log.Fatal(err)
	}
	caps := engine.Capabilities()
	fmt.Println(engine.String())
	fmt.Println("backend:", engine.Backend())
	fmt.Println("plannable:", caps.Plannable, "quantized:", caps.Quantized)

	// Functional options build the identical operating point.
	same, err := photofourier.OpenWith("accelerator",
		photofourier.WithNTA(4), photofourier.WithADCBits(6), photofourier.WithReadoutSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("option parity:", same.String() == engine.String())

	// Unknown backends and malformed specs yield typed errors.
	_, err = photofourier.Open("flux-capacitor")
	fmt.Println("unknown backend:", errors.Is(err, photofourier.ErrUnknownBackend))
	_, err = photofourier.Open("rowtiled?nta=4")
	fmt.Println("bad spec:", errors.Is(err, photofourier.ErrBadSpec))

	// Output:
	// accelerator?nta=4,adc=6,seed=7
	// backend: accelerator
	// plannable: true quantized: true
	// option parity: true
	// unknown backend: true
	// bad spec: true
}

// Example_inferContext serves a compiled network through an
// InferenceSession whose Infer honors context cancellation — both at queue
// admission and while an admitted sample waits for its micro-batch.
func Example_inferContext() {
	engine, err := photofourier.Open("rowtiled?aperture=64")
	if err != nil {
		log.Fatal(err)
	}
	net := nn.SmallCNN([2]int{4, 8}, 10, 7)
	plan, err := net.Compile(engine)
	if err != nil {
		log.Fatal(err)
	}
	session, err := photofourier.NewInferenceSession(plan, photofourier.SessionOptions{MaxBatch: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	x := newExampleSample()
	pred, err := session.Infer(context.Background(), x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("classes:", len(pred.Logits), "topk:", len(pred.TopK))

	// A cancelled context is honored instead of blocking on the batcher.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = session.Infer(ctx, x)
	fmt.Println("cancelled:", errors.Is(err, context.Canceled))

	// Output:
	// classes: 10 topk: 5
	// cancelled: true
}
