// Package photofourier is the public API of the PhotoFourier reproduction:
// a photonic Joint Transform Correlator-based neural network accelerator
// (Li et al., HPCA 2023). It re-exports the main entry points of the
// internal packages:
//
//   - backend registry: Open("accelerator?nta=16,adc=8") builds any
//     registered execution substrate from a spec string (engine choice is
//     data, not code); OpenWith composes the same operating points from
//     functional options; Backends/Describe enumerate names and
//     capabilities;
//   - functional inference: registry-opened engines run real CNN
//     convolutions through the paper's row-tiling algorithm and the full
//     quantized/temporally-accumulated accelerator model, and
//     Network.Compile + InferenceSession serve them; OpenDevicePool
//     shards batches bit-identically across replicated devices with
//     health scoring, quarantine/probe/readmit, and hedged re-dispatch;
//   - architecture evaluation: CG/NG/Baseline configurations with
//     cycle/energy/area models for every workload in the paper;
//   - experiments: regeneration of every table and figure.
//
// See DESIGN.md for the spec-string grammar, the per-backend option set,
// capability semantics, and the error taxonomy, and the runnable programs
// under examples/ for typical usage.
package photofourier

import (
	"photofourier/internal/arch"
	"photofourier/internal/backend"
	"photofourier/internal/core"
	"photofourier/internal/experiments"
	"photofourier/internal/nets"
	"photofourier/internal/nn"
	"photofourier/internal/optics"
	"photofourier/internal/pool"
	"photofourier/internal/serve"
	"photofourier/internal/tensor"
	"photofourier/internal/tiling"
)

// Backend registry (engine construction from spec strings).
type (
	// Engine is an opened, immutable execution substrate: a configured
	// ConvEngine plus its backend identity, capabilities, and canonical
	// spec string.
	Engine = backend.Engine
	// EngineOption is a functional engine-construction option for
	// OpenWith (WithNTA, WithParallelism, ...).
	EngineOption = backend.Option
	// EngineConfig is the fully resolved operating point of an opened
	// engine.
	EngineConfig = backend.Config
	// EngineSpec is a parsed engine spec (name plus key=value params).
	EngineSpec = backend.Spec
	// Capabilities describes what a substrate can do (Plannable, Noisy,
	// Quantized, DefaultAperture); callers branch on it instead of
	// type-switching on concrete engines.
	Capabilities = nn.Capabilities
)

// Open builds an engine from a spec string:
//
//	name?key=val,key=val,...
//
// e.g. "rowtiled?aperture=256" or "accelerator?nta=16,adc=8,seed=7,workers=4".
// Registered names: reference, rowtiled, accelerator, accelerator-noisy,
// unplanned (see Backends). Unknown names yield ErrUnknownBackend;
// malformed or out-of-range specs yield ErrBadSpec.
func Open(spec string) (*Engine, error) { return backend.Open(spec) }

// OpenWith builds an engine by backend name and functional options —
// exact parity with Open's spec keys.
func OpenWith(name string, opts ...EngineOption) (*Engine, error) {
	return backend.OpenWith(name, opts...)
}

// Backends returns every registered backend name, sorted.
func Backends() []string { return backend.Names() }

// DescribeBackend returns a registered backend's capability advertisement.
func DescribeBackend(name string) (Capabilities, error) { return backend.Describe(name) }

// Functional engine-construction options (see Open for the spec-string
// equivalents).
var (
	// WithParallelism bounds the engine's worker pools (<= 0 = NumCPU).
	WithParallelism = backend.WithParallelism
	// WithAperture sets the 1D convolution aperture (PFCU waveguides).
	WithAperture = backend.WithAperture
	// WithColumnPad toggles zero-padded row tiles (exact Same equality).
	WithColumnPad = backend.WithColumnPad
	// WithNTA sets the temporal accumulation depth.
	WithNTA = backend.WithNTA
	// WithADCBits sets partial-sum readout precision (0 = full).
	WithADCBits = backend.WithADCBits
	// WithDACBits sets operand precision (0 = full).
	WithDACBits = backend.WithDACBits
	// WithReadoutSeed seeds the readout-noise substreams (0 = default).
	WithReadoutSeed = backend.WithReadoutSeed
	// WithReadoutNoise sets the per-readout sensing noise fraction.
	WithReadoutNoise = backend.WithReadoutNoise
	// WithNoiseFree zeroes every configurable noise source.
	WithNoiseFree = backend.WithNoiseFree
	// WithTiledPath routes the accelerator through exact 1D shots.
	WithTiledPath = backend.WithTiledPath
	// WithCalibPercentile sets percentile ADC range calibration.
	WithCalibPercentile = backend.WithCalibPercentile
	// WithFault arms the deterministic fault injector from a fault spec
	// (";"-separated mode:param, e.g. "shot:1e-3;drift:5e-5"; see
	// DESIGN.md's fault-model section). Empty disables injection.
	WithFault = backend.WithFault
	// WithFaultSeed seeds the fault injector's deterministic draws.
	WithFaultSeed = backend.WithFaultSeed
)

// Typed sentinel errors, wired for errors.Is across the whole stack.
var (
	// ErrUnknownBackend: Open/OpenWith named an unregistered backend.
	ErrUnknownBackend = backend.ErrUnknownBackend
	// ErrBadSpec: malformed spec string, inapplicable option, or
	// out-of-range value.
	ErrBadSpec = backend.ErrBadSpec
	// ErrStalePlan: a compiled LayerPlan/NetworkPlan no longer matches its
	// source weights or engine config; recompile.
	ErrStalePlan = nn.ErrStalePlan
	// ErrShapeMismatch: operand shapes are inconsistent with each other or
	// the operation.
	ErrShapeMismatch = nn.ErrShapeMismatch
	// ErrSessionClosed: Infer on a closed InferenceSession.
	ErrSessionClosed = serve.ErrSessionClosed
	// ErrBadOptions: invalid InferenceSession options (negative values).
	ErrBadOptions = serve.ErrBadOptions
	// ErrDeviceFault: an injected substrate fault (shot misfire past the
	// retry budget, device outage, unusable quarantined aperture) surfaced
	// through an engine call.
	ErrDeviceFault = core.ErrDeviceFault
	// ErrRecoveryExhausted: a served request failed every rung of the
	// session's recovery ladder (retry, split, failover); the chain still
	// matches ErrDeviceFault when an injected fault was the root cause.
	ErrRecoveryExhausted = serve.ErrRecoveryExhausted
	// ErrPoolExhausted: a DevicePool request found zero live devices
	// (every device quarantined); the chain matches ErrDeviceFault when
	// injected faults caused the quarantines.
	ErrPoolExhausted = pool.ErrPoolExhausted
	// ErrBadPool: malformed pool spec or invalid pool options.
	ErrBadPool = pool.ErrBadPool
)

// Accelerator configurations (paper Sec. V).
var (
	// ConfigCG returns the PhotoFourier-CG flagship (8 PFCUs, 14 nm).
	ConfigCG = arch.PhotoFourierCG
	// ConfigNG returns the PhotoFourier-NG next-generation design.
	ConfigNG = arch.PhotoFourierNG
	// ConfigBaseline returns the unoptimized single-PFCU system.
	ConfigBaseline = arch.Baseline
)

// Config is an accelerator configuration.
type Config = arch.Config

// NetPerf is the result of evaluating a network on a configuration.
type NetPerf = arch.NetPerf

// Evaluate runs the architecture model on a named workload ("AlexNet",
// "VGG-16", "ResNet-18", "ResNet-32", "ResNet-50", "ResNet-s",
// "CrossLight-CNN").
func Evaluate(cfg Config, network string) (NetPerf, error) {
	n, err := nets.ByName(network)
	if err != nil {
		return NetPerf{}, err
	}
	return arch.EvalNetwork(cfg, n)
}

// Functional convolution engines (paper Sec. III-IV, VI-A).
type (
	// ConvEngine executes CNN convolutions on a substrate.
	ConvEngine = nn.ConvEngine
	// RowTiledEngine is the exact row-tiled 1D substrate (Table I).
	//
	// Deprecated: open it through the registry ("rowtiled?aperture=256")
	// instead of handling the concrete type.
	RowTiledEngine = core.RowTiledEngine
	// AcceleratorEngine is the full quantized accelerator (Fig. 7).
	//
	// Deprecated: open it through the registry ("accelerator?nta=16")
	// instead of handling the concrete type.
	AcceleratorEngine = core.Engine
	// LayerPlan is a compiled, reusable inference path for one convolution
	// layer (see DESIGN.md): weights are quantized, sign-split, and
	// spectrally latched once, and every call pays only
	// activation-dependent work, bit-identical to the unplanned engine.
	LayerPlan = nn.LayerPlan
)

// NewRowTiledEngine builds a row-tiled engine with the given 1D aperture
// (256 in the paper's PFCU).
//
// Deprecated: use Open("rowtiled?aperture=N") or
// OpenWith("rowtiled", WithAperture(N)); registry-opened engines are
// immutable and carry capabilities and a canonical spec.
func NewRowTiledEngine(nconv int) *RowTiledEngine { return core.NewRowTiledEngine(nconv) }

// NewAcceleratorEngine builds the accelerator engine at the paper's default
// operating point (NTA=16, 8-bit ADC/DAC).
//
// Deprecated: use Open("accelerator") or OpenWith("accelerator", ...);
// registry-opened engines are immutable and carry capabilities and a
// canonical spec.
func NewAcceleratorEngine() *AcceleratorEngine { return core.NewEngine() }

// Whole-network compiled inference (see DESIGN.md).
type (
	// Network is the trainable CNN the accuracy studies run
	// (nn.ResNetS/SmallCNN/AlexNetS build the stock subjects).
	Network = nn.Network
	// NetworkPlan is a whole network compiled for repeated inference under
	// one engine: Network.Compile walks the module graph once, compiles
	// every convolution's LayerPlan eagerly, and streams activations
	// through pooled buffers — bit-identical to Network.Forward.
	NetworkPlan = nn.NetworkPlan
	// InferenceSession is the concurrency-safe serving front-end: it
	// micro-batches single-sample Infer(ctx, x) requests — honoring
	// context cancellation at admission and during the batch wait — and
	// runs them through one shared NetworkPlan.
	InferenceSession = serve.Session
	// SessionOptions configures an InferenceSession (batch size, deadline,
	// top-k width, retry/failover policy); negative values are rejected
	// with ErrBadOptions.
	SessionOptions = serve.Options
	// Prediction is the per-sample result of one served inference.
	Prediction = serve.Prediction
	// DevicePool shards batched inference by sample across N
	// registry-opened devices, bit-identically to a single engine, with
	// per-device health scoring, quarantine/probe/readmit, and hedged
	// re-dispatch of straggler shards (see DESIGN.md's pool section).
	DevicePool = pool.DevicePool
	// PoolOptions configures a DevicePool (device specs, shard cap,
	// quarantine threshold, probe interval, hedging policy).
	PoolOptions = pool.Options
	// PoolDeviceHealth is one pool device's point-in-time health row, as
	// surfaced by DevicePool.DeviceHealth and InferenceSession.Health.
	PoolDeviceHealth = pool.DeviceHealth
)

// NewInferenceSession starts a micro-batching inference session over a
// compiled network plan. Options are validated here, once; negative values
// yield an error matching ErrBadOptions.
func NewInferenceSession(plan *NetworkPlan, opts SessionOptions) (*InferenceSession, error) {
	return serve.New(plan, opts)
}

// NewPoolInferenceSession starts a micro-batching inference session whose
// executor is a DevicePool instead of a single compiled plan: requests are
// sharded across the pool's live devices, the session's effective batch
// ceiling degrades with the live fraction, and Health carries per-device
// rows.
func NewPoolInferenceSession(p *DevicePool, opts SessionOptions) (*InferenceSession, error) {
	return serve.NewExecutor(p, opts)
}

// OpenDevicePool builds a device pool from a pool spec string:
//
//	pool?key=val,...,devices=spec|spec*N|...
//
// e.g. "pool?quarantine=2,hedge=true,devices=accelerator?workers=1*4".
// devices= must come last (device specs may themselves contain ',' and
// ';'); a *N suffix replicates one device spec. Prefix keys: maxshards,
// quarantine, probe, hedge, hedgedelay, hedgefactor, minhedge. Malformed
// specs yield ErrBadPool; device specs are opened through the backend
// registry, so unknown names yield ErrUnknownBackend.
func OpenDevicePool(net *Network, spec string) (*DevicePool, error) {
	return pool.Open(net, spec)
}

// TilingPlan describes how one 2D convolution maps to 1D JTC shots.
type TilingPlan = tiling.Plan

// NewTilingPlan plans a HxW input with a KxK kernel on an nconv-sample 1D
// aperture; same selects Same (true) or Valid (false) 2D semantics.
func NewTilingPlan(h, w, k, nconv int, same bool) (*TilingPlan, error) {
	mode := tensor.Valid
	if same {
		mode = tensor.Same
	}
	return tiling.NewPlan(h, w, k, nconv, mode, false)
}

// JTCSystem is the physical-optics simulator (Fig. 2).
type JTCSystem = optics.System

// NewJTCSystem builds an optics simulator with the given field resolution
// and RNG seed.
func NewJTCSystem(samples int, seed int64) (*JTCSystem, error) {
	return optics.NewSystem(samples, seed)
}

// Experiment runs one named paper experiment (see ExperimentIDs).
func Experiment(id string, quick bool) (*experiments.Result, error) {
	return experiments.Run(id, experiments.Options{Quick: quick})
}

// ExperimentIDs lists every reproducible table/figure id.
func ExperimentIDs() []string { return experiments.IDs() }
