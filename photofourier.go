// Package photofourier is the public API of the PhotoFourier reproduction:
// a photonic Joint Transform Correlator-based neural network accelerator
// (Li et al., HPCA 2023). It re-exports the main entry points of the
// internal packages:
//
//   - functional inference: RowTiledEngine and AcceleratorEngine run real
//     CNN convolutions through the paper's row-tiling algorithm and the
//     full quantized/temporally-accumulated accelerator model;
//   - architecture evaluation: CG/NG/Baseline configurations with
//     cycle/energy/area models for every workload in the paper;
//   - experiments: regeneration of every table and figure.
//
// See the runnable programs under examples/ for typical usage.
package photofourier

import (
	"photofourier/internal/arch"
	"photofourier/internal/core"
	"photofourier/internal/experiments"
	"photofourier/internal/nets"
	"photofourier/internal/nn"
	"photofourier/internal/optics"
	"photofourier/internal/serve"
	"photofourier/internal/tensor"
	"photofourier/internal/tiling"
)

// Accelerator configurations (paper Sec. V).
var (
	// ConfigCG returns the PhotoFourier-CG flagship (8 PFCUs, 14 nm).
	ConfigCG = arch.PhotoFourierCG
	// ConfigNG returns the PhotoFourier-NG next-generation design.
	ConfigNG = arch.PhotoFourierNG
	// ConfigBaseline returns the unoptimized single-PFCU system.
	ConfigBaseline = arch.Baseline
)

// Config is an accelerator configuration.
type Config = arch.Config

// NetPerf is the result of evaluating a network on a configuration.
type NetPerf = arch.NetPerf

// Evaluate runs the architecture model on a named workload ("AlexNet",
// "VGG-16", "ResNet-18", "ResNet-32", "ResNet-50", "ResNet-s",
// "CrossLight-CNN").
func Evaluate(cfg Config, network string) (NetPerf, error) {
	n, err := nets.ByName(network)
	if err != nil {
		return NetPerf{}, err
	}
	return arch.EvalNetwork(cfg, n)
}

// Functional convolution engines (paper Sec. III-IV, VI-A).
type (
	// ConvEngine executes CNN convolutions on a substrate.
	ConvEngine = nn.ConvEngine
	// RowTiledEngine is the exact row-tiled 1D substrate (Table I).
	RowTiledEngine = core.RowTiledEngine
	// AcceleratorEngine is the full quantized accelerator (Fig. 7).
	AcceleratorEngine = core.Engine
	// LayerPlan is a compiled, reusable inference path for one convolution
	// layer (see AcceleratorEngine.PlanConv and DESIGN.md): weights are
	// quantized, sign-split, and spectrally latched once, and every call
	// pays only activation-dependent work, bit-identical to the unplanned
	// engine.
	LayerPlan = nn.LayerPlan
)

// NewRowTiledEngine builds a row-tiled engine with the given 1D aperture
// (256 in the paper's PFCU).
func NewRowTiledEngine(nconv int) *RowTiledEngine { return core.NewRowTiledEngine(nconv) }

// NewAcceleratorEngine builds the accelerator engine at the paper's default
// operating point (NTA=16, 8-bit ADC/DAC).
func NewAcceleratorEngine() *AcceleratorEngine { return core.NewEngine() }

// Whole-network compiled inference (see DESIGN.md).
type (
	// Network is the trainable CNN the accuracy studies run
	// (nn.ResNetS/SmallCNN/AlexNetS build the stock subjects).
	Network = nn.Network
	// NetworkPlan is a whole network compiled for repeated inference under
	// one engine: Network.Compile walks the module graph once, compiles
	// every convolution's LayerPlan eagerly, and streams activations
	// through pooled buffers — bit-identical to Network.Forward.
	NetworkPlan = nn.NetworkPlan
	// InferenceSession is the concurrency-safe serving front-end: it
	// micro-batches single-sample requests and runs them through one
	// shared NetworkPlan.
	InferenceSession = serve.Session
	// SessionOptions configures an InferenceSession (batch size, deadline,
	// top-k width).
	SessionOptions = serve.Options
)

// NewInferenceSession starts a micro-batching inference session over a
// compiled network plan.
func NewInferenceSession(plan *NetworkPlan, opts SessionOptions) *InferenceSession {
	return serve.New(plan, opts)
}

// TilingPlan describes how one 2D convolution maps to 1D JTC shots.
type TilingPlan = tiling.Plan

// NewTilingPlan plans a HxW input with a KxK kernel on an nconv-sample 1D
// aperture; same selects Same (true) or Valid (false) 2D semantics.
func NewTilingPlan(h, w, k, nconv int, same bool) (*TilingPlan, error) {
	mode := tensor.Valid
	if same {
		mode = tensor.Same
	}
	return tiling.NewPlan(h, w, k, nconv, mode, false)
}

// JTCSystem is the physical-optics simulator (Fig. 2).
type JTCSystem = optics.System

// NewJTCSystem builds an optics simulator with the given field resolution
// and RNG seed.
func NewJTCSystem(samples int, seed int64) (*JTCSystem, error) {
	return optics.NewSystem(samples, seed)
}

// Experiment runs one named paper experiment (see ExperimentIDs).
func Experiment(id string, quick bool) (*experiments.Result, error) {
	return experiments.Run(id, experiments.Options{Quick: quick})
}

// ExperimentIDs lists every reproducible table/figure id.
func ExperimentIDs() []string { return experiments.IDs() }
