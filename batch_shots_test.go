package photofourier

import (
	"math/rand"
	"testing"

	"photofourier/internal/backend"
	"photofourier/internal/jtc"
	"photofourier/internal/nn"
	"photofourier/internal/tensor"
)

// TestPackedBatchShotRegression is the shot-count regression gate: a packed
// batch-8 ForwardBatch on the tiled accelerator must issue STRICTLY fewer
// modeled JTC shots than eight single-sample forwards — the aperture-packing
// win the batch scheduler exists for. (Run serially: it reads deltas of the
// process-wide jtc.Shots counter.)
func TestPackedBatchShotRegression(t *testing.T) {
	net := nn.SmallCNN([2]int{4, 8}, 10, 7)
	eng, err := backend.Open("accelerator?tiled=true")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	x8 := tensor.New(8, 3, 32, 32)
	x8.RandN(rng, 1)

	planA, err := net.Compile(eng)
	if err != nil {
		t.Fatal(err)
	}
	per := x8.Size() / 8
	before := jtc.Shots()
	for b := 0; b < 8; b++ {
		sample := &tensor.Tensor{Shape: []int{1, 3, 32, 32}, Data: x8.Data[b*per : (b+1)*per]}
		if _, err := planA.Forward(sample); err != nil {
			t.Fatal(err)
		}
	}
	singleShots := jtc.Shots() - before

	engB, err := backend.Open("accelerator?tiled=true")
	if err != nil {
		t.Fatal(err)
	}
	planB, err := net.Compile(engB)
	if err != nil {
		t.Fatal(err)
	}
	before = jtc.Shots()
	if _, err := planB.ForwardBatch(x8); err != nil {
		t.Fatal(err)
	}
	batchShots := jtc.Shots() - before

	t.Logf("tiled SmallCNN batch 8: per-sample %d shots, packed %d shots (%.1f%% fewer)",
		singleShots, batchShots, 100*(1-float64(batchShots)/float64(singleShots)))
	if batchShots >= singleShots {
		t.Fatalf("packed batch issued %d shots, not fewer than %d per-sample shots", batchShots, singleShots)
	}
}
