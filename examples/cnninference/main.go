// Cnninference: train a small CNN on the synthetic dataset, then run the
// same trained network on three substrates — exact 2D convolution, the
// row-tiled 1D path (Table I), and the full quantized accelerator (Fig. 7)
// — to see how little accuracy the photonic execution costs. Each substrate
// is evaluated through a compiled NetworkPlan, and the accelerator plan is
// then served through a micro-batching InferenceSession, the pattern a
// deployed correlator would use (latch weights once, stream activations).
package main

import (
	"fmt"
	"log"
	"sync"

	"photofourier"
	"photofourier/internal/dataset"
	"photofourier/internal/nn"
	"photofourier/internal/serve"
	"photofourier/internal/train"
)

func main() {
	data, err := dataset.Synthetic(800, 1234)
	if err != nil {
		log.Fatal(err)
	}
	trainSet, testSet, err := data.Split(0.75)
	if err != nil {
		log.Fatal(err)
	}
	net := nn.SmallCNN([2]int{8, 16}, dataset.NumClasses, 7)
	opt := train.DefaultOptions()
	if _, err := train.SGD(net, trainSet, opt); err != nil {
		log.Fatal(err)
	}

	engines := []struct {
		label       string
		engine      photofourier.ConvEngine
		accelerator bool
	}{
		{"exact 2D reference", nil, false},
		{"row-tiled 1D JTC", photofourier.NewRowTiledEngine(256), false},
		{"accelerator (8-bit, NTA=16)", photofourier.NewAcceleratorEngine(), true},
	}
	var accelPlan *photofourier.NetworkPlan
	for _, e := range engines {
		plan, err := net.Compile(e.engine)
		if err != nil {
			log.Fatal(err)
		}
		top1, top5, err := train.Accuracy(plan, testSet, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s top-1 %.1f%%  top-5 %.1f%%\n", e.label, 100*top1, 100*top5)
		if e.accelerator {
			accelPlan = plan
		}
	}

	// Serve a few samples concurrently through the accelerator plan.
	session := photofourier.NewInferenceSession(accelPlan, serve.Options{MaxBatch: 8})
	defer session.Close()
	var wg sync.WaitGroup
	hits := make([]bool, 16)
	for i := range hits {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pred, err := session.Infer(testSet.X[i])
			if err != nil {
				log.Fatal(err)
			}
			hits[i] = pred.Class == testSet.Y[i]
		}(i)
	}
	wg.Wait()
	correct := 0
	for _, h := range hits {
		if h {
			correct++
		}
	}
	fmt.Printf("served %d samples in %d micro-batches (%d/%d correct)\n",
		session.Samples(), session.Batches(), correct, len(hits))
}
