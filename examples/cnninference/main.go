// Cnninference: train a small CNN on the synthetic dataset, then run the
// same trained network on three substrates — exact 2D convolution, the
// row-tiled 1D path (Table I), and the full quantized accelerator (Fig. 7)
// — to see how little accuracy the photonic execution costs.
package main

import (
	"fmt"
	"log"

	"photofourier"
	"photofourier/internal/dataset"
	"photofourier/internal/nn"
	"photofourier/internal/train"
)

func main() {
	data, err := dataset.Synthetic(800, 1234)
	if err != nil {
		log.Fatal(err)
	}
	trainSet, testSet, err := data.Split(0.75)
	if err != nil {
		log.Fatal(err)
	}
	net := nn.SmallCNN([2]int{8, 16}, dataset.NumClasses, 7)
	opt := train.DefaultOptions()
	if _, err := train.SGD(net, trainSet, opt); err != nil {
		log.Fatal(err)
	}

	engines := []struct {
		label  string
		engine photofourier.ConvEngine
	}{
		{"exact 2D reference", nil},
		{"row-tiled 1D JTC", photofourier.NewRowTiledEngine(256)},
		{"accelerator (8-bit, NTA=16)", photofourier.NewAcceleratorEngine()},
	}
	for _, e := range engines {
		net.SetConvEngine(e.engine)
		top1, top5, err := train.Accuracy(net, testSet, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s top-1 %.1f%%  top-5 %.1f%%\n", e.label, 100*top1, 100*top5)
	}
}
