// Cnninference: train a small CNN on the synthetic dataset, then run the
// same trained network on a list of execution substrates selected by
// engine spec strings (photofourier.Open) — by default the exact 2D
// reference, the row-tiled 1D path (Table I), and the full quantized
// accelerator (Fig. 7) — to see how little accuracy the photonic execution
// costs. Each substrate is evaluated through a compiled NetworkPlan, and
// the last plannable substrate's plan is then served through a
// micro-batching InferenceSession with context-aware Infer, the pattern a
// deployed correlator would use (latch weights once, stream activations).
//
//	cnninference -engines "rowtiled?aperture=256;accelerator-noisy?nta=8"
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"sync"

	"photofourier"
	"photofourier/internal/dataset"
	"photofourier/internal/nn"
	"photofourier/internal/train"
)

func main() {
	samples := flag.Int("samples", 800, "synthetic dataset size")
	engines := flag.String("engines", "reference;rowtiled?aperture=256;accelerator",
		"semicolon-separated engine specs to evaluate")
	flag.Parse()

	data, err := dataset.Synthetic(*samples, 1234)
	if err != nil {
		log.Fatal(err)
	}
	trainSet, testSet, err := data.Split(0.75)
	if err != nil {
		log.Fatal(err)
	}
	net := nn.SmallCNN([2]int{8, 16}, dataset.NumClasses, 7)
	opt := train.DefaultOptions()
	if _, err := train.SGD(net, trainSet, opt); err != nil {
		log.Fatal(err)
	}

	// Engine choice is data: every substrate in the sweep is an Open spec,
	// and the serving demo picks the last plannable one by capability
	// instead of hard-coding a concrete engine type.
	var servePlan *photofourier.NetworkPlan
	var serveSpec string
	for _, spec := range strings.Split(*engines, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		engine, err := photofourier.Open(spec)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := net.Compile(engine)
		if err != nil {
			log.Fatal(err)
		}
		top1, top5, err := train.Accuracy(plan, testSet, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s top-1 %.1f%%  top-5 %.1f%%\n", engine.String(), 100*top1, 100*top5)
		if engine.Capabilities().Plannable || servePlan == nil {
			servePlan, serveSpec = plan, engine.String()
		}
	}
	if servePlan == nil {
		log.Fatal("no engines requested")
	}

	// Serve a few samples concurrently through the selected plan.
	session, err := photofourier.NewInferenceSession(servePlan, photofourier.SessionOptions{MaxBatch: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	hits := make([]bool, 16)
	for i := range hits {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pred, err := session.Infer(ctx, testSet.X[i])
			if err != nil {
				log.Fatal(err)
			}
			hits[i] = pred.Class == testSet.Y[i]
		}(i)
	}
	wg.Wait()
	correct := 0
	for _, h := range hits {
		if h {
			correct++
		}
	}
	fmt.Printf("served %d samples via %q in %d micro-batches (%d/%d correct)\n",
		session.Samples(), serveSpec, session.Batches(), correct, len(hits))
}
