// Correlator: the classic JTC application (paper Sec. II-A cites optical
// object tracking) — locate a known pattern inside a noisy 1D scene by
// reading the correlation peak off the simulated output plane.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"photofourier"
	"photofourier/internal/fourier"
	"photofourier/internal/optics"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	// A distinctive non-negative pattern hidden at a known offset in a
	// noisy scene.
	pattern := []float64{0.1, 0.9, 0.2, 0.8, 0.3, 0.9, 0.1}
	const hiddenAt = 37
	scene := make([]float64, 128)
	for i := range scene {
		scene[i] = 0.15 * rng.Float64()
	}
	for i, v := range pattern {
		scene[hiddenAt+i] += v
	}

	samples := fourier.NextPow2(optics.MinSamples(len(scene), len(pattern)))
	sys, err := photofourier.NewJTCSystem(samples, 1)
	if err != nil {
		log.Fatal(err)
	}
	sys.DarkNoise = 1e-3 // photodetector noise at the Fourier plane
	corr, err := sys.Correlate1D(scene, pattern)
	if err != nil {
		log.Fatal(err)
	}
	// The correlation peaks where the pattern aligns: shift q = hiddenAt,
	// stored at index q + len(pattern) - 1.
	best, bestIdx := 0.0, -1
	for i, v := range corr {
		if v > best {
			best, bestIdx = v, i
		}
	}
	found := bestIdx - (len(pattern) - 1)
	fmt.Printf("pattern hidden at offset %d; JTC correlation peak at %d (value %.3f)\n",
		hiddenAt, found, best)
	if found == hiddenAt {
		fmt.Println("single-shot optical localization succeeded")
	} else {
		fmt.Println("localization missed — try lowering the detector noise")
	}
}
