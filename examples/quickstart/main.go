// Quickstart: evaluate PhotoFourier-CG on VGG-16, run one row-tiled
// convolution, and print the tiling plan — the three core API entry points.
package main

import (
	"fmt"
	"log"

	"photofourier"
	"photofourier/internal/tensor"
)

func main() {
	// 1. Architecture model: how fast/efficient is the accelerator?
	perf, err := photofourier.Evaluate(photofourier.ConfigCG(), "VGG-16")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PhotoFourier-CG on VGG-16: %.0f FPS, %.1f W, %.1f FPS/W\n",
		perf.FPS(), perf.AvgPowerW(), perf.FPSPerWatt())

	// 2. Tiling plan: how does a 2D convolution map to 1D JTC shots?
	plan, err := photofourier.NewTilingPlan(14, 14, 3, 256, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("14x14 conv on a 256-waveguide PFCU: mode=%v shots=%d efficiency=%.0f%%\n",
		plan.Mode, plan.Shots(), 100*plan.Efficiency())

	// 3. Functional convolution through the row-tiled substrate, opened
	// from its registry spec string (engine choice is data, not code).
	engine, err := photofourier.Open("rowtiled?aperture=256")
	if err != nil {
		log.Fatal(err)
	}
	in := tensor.New(1, 1, 14, 14)
	for i := range in.Data {
		in.Data[i] = float64(i%13) / 13
	}
	kernel := tensor.New(1, 1, 3, 3)
	kernel.Fill(1.0 / 9)
	out, err := engine.Conv2D(in, kernel, nil, 1, tensor.Same)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("row-tiled 3x3 smoothing produced a %dx%d output; center value %.3f\n",
		out.Shape[2], out.Shape[3], out.At(0, 0, 7, 7))
}
