// Designspace: the Table III exploration — for each PFCU count under the
// 100 mm^2 budget, find the maximum waveguide count and benchmark FPS/W,
// locating the optimum for both PhotoFourier generations.
package main

import (
	"fmt"
	"log"
	"math"

	"photofourier"
)

func main() {
	networks := []string{"AlexNet", "VGG-16", "ResNet-18", "ResNet-32", "ResNet-50"}
	for _, gen := range []photofourier.Config{photofourier.ConfigCG(), photofourier.ConfigNG()} {
		fmt.Printf("== %s (100 mm^2 budget) ==\n", gen.Name)
		bestN, bestV := 0, 0.0
		for _, npfcu := range []int{4, 8, 16, 32, 64} {
			w, err := gen.AreaModel.MaxWaveguides(100, npfcu)
			if err != nil {
				log.Fatal(err)
			}
			cfg := gen
			cfg.NumPFCU, cfg.IB, cfg.Waveguides = npfcu, npfcu, w
			// Geometric mean FPS/W over the benchmark.
			prod := 1.0
			for _, name := range networks {
				p, err := photofourier.Evaluate(cfg, name)
				if err != nil {
					log.Fatal(err)
				}
				prod *= p.FPSPerWatt()
			}
			g := math.Pow(prod, 1/float64(len(networks)))
			if g > bestV {
				bestV, bestN = g, npfcu
			}
			fmt.Printf("  %2d PFCUs x %3d waveguides: geomean %8.1f FPS/W\n", npfcu, w, g)
		}
		fmt.Printf("  optimum: %d PFCUs (paper: CG@8, NG@16)\n", bestN)
	}
}
