package photofourier

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"photofourier/internal/backend"
	"photofourier/internal/jtc"
	"photofourier/internal/nn"
	"photofourier/internal/serve"
	"photofourier/internal/tensor"
	"photofourier/internal/tiling"
)

// benchEngineSpec selects the engine the net-level benchmarks run on. The
// default is the paper's accelerator operating point; scripts/bench.sh
// forwards its SPEC env so BENCH snapshots record which backend spec
// produced them (e.g. PF_BENCH_ENGINE="accelerator-noisy?nta=8").
func benchEngineSpec() string {
	if spec := os.Getenv("PF_BENCH_ENGINE"); spec != "" {
		return spec
	}
	return "accelerator"
}

func benchOpen(b *testing.B) *backend.Engine {
	b.Helper()
	e, err := backend.Open(benchEngineSpec())
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// End-to-end inference throughput: one trained-shape CNN served many
// single-sample requests on a registry-opened engine spec (BENCH_3.json).
//
//   - uncompiled-per-sample: Network.Forward with planning suppressed (the
//     spec's unplanned twin at the identical operating point) —
//     module-graph walking plus per-call weight quantization and four
//     independent cross-term sweeps, the pre-compilation baseline;
//   - compiled-per-sample: NetworkPlan.Forward, one sample per call;
//   - compiled-batch8: NetworkPlan.Forward on 8-sample batches (ns/op is
//     per batch; divide by 8 for per-sample);
//   - session-batch8: concurrent clients through an InferenceSession with
//     MaxBatch 8 (RunParallel, so ns/op is wall-clock per sample).
func BenchmarkNetInference(b *testing.B) {
	net := nn.SmallCNN([2]int{8, 16}, 10, 7)
	rng := rand.New(rand.NewSource(21))
	x1 := tensor.New(1, 3, 32, 32)
	x1.RandN(rng, 1)
	x8 := tensor.New(8, 3, 32, 32)
	x8.RandN(rng, 1)
	sample := &tensor.Tensor{Shape: []int{3, 32, 32}, Data: x1.Data}

	b.Run("uncompiled-per-sample", func(b *testing.B) {
		baseline, err := backend.UnplannedTwin(benchOpen(b))
		if err != nil {
			b.Fatal(err)
		}
		net.SetConvEngine(baseline)
		defer net.SetConvEngine(nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := net.Forward(x1); err != nil {
				b.Fatal(err)
			}
		}
	})

	compile := func(b *testing.B) *nn.NetworkPlan {
		b.Helper()
		plan, err := net.Compile(benchOpen(b))
		if err != nil {
			b.Fatal(err)
		}
		return plan
	}

	b.Run("compiled-per-sample", func(b *testing.B) {
		plan := compile(b)
		if _, err := plan.Forward(x1); err != nil { // warm geometry + pools
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Forward(x1); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("compiled-batch8", func(b *testing.B) {
		plan := compile(b)
		if _, err := plan.Forward(x8); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Forward(x8); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("session-batch8", func(b *testing.B) {
		plan := compile(b)
		s, err := serve.New(plan, serve.Options{MaxBatch: 8})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		ctx := context.Background()
		b.SetParallelism(16) // concurrent clients feeding the micro-batcher
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := s.Infer(ctx, sample); err != nil {
					b.Error(err) // Fatal must not run on a PB worker goroutine
					return
				}
			}
		})
	})
}

// BenchmarkNetEvaluate measures the accuracy-sweep workload end to end —
// what the table1/fig7 harness actually runs per evaluation batch:
//
//   - per-sample-double-forward: the sweep pattern PR 3 replaced — one
//     sample per batch, top-1 and top-5 each rerunning Network.Forward
//     (the Predict+TopKCorrect duplication), module graph walked per
//     call. Conv-level lazy LayerPlans stay active, as they were before
//     network compilation existed, so this isolates the network-level
//     win (it is NOT the same baseline as NetInference's
//     uncompiled-per-sample, which also strips layer planning);
//   - compiled-batch8: NetworkPlan.EvaluateLogits on 8-sample batches —
//     one forward pass, every metric derived from the same logits (ns/op
//     is per batch; divide by 8 for per-sample).
func BenchmarkNetEvaluate(b *testing.B) {
	net := nn.SmallCNN([2]int{8, 16}, 10, 7)
	rng := rand.New(rand.NewSource(22))
	x1 := tensor.New(1, 3, 32, 32)
	x1.RandN(rng, 1)
	x8 := tensor.New(8, 3, 32, 32)
	x8.RandN(rng, 1)
	labels8 := []int{3, 1, 4, 1, 5, 9, 2, 6}

	b.Run("per-sample-double-forward", func(b *testing.B) {
		net.SetConvEngine(benchOpen(b))
		defer net.SetConvEngine(nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := net.TopKCorrect(x1, labels8[:1], 1); err != nil {
				b.Fatal(err)
			}
			if _, err := net.TopKCorrect(x1, labels8[:1], 5); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("compiled-batch8", func(b *testing.B) {
		plan, err := net.Compile(benchOpen(b))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := plan.EvaluateLogits(x8, labels8, 5); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.EvaluateLogits(x8, labels8, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNetForwardBatch measures the batch-major per-sample-exact
// inference path (BENCH_5.json): SmallCNN and AlexNetS at batch sizes 1, 8,
// and 32 on the PF_BENCH_ENGINE spec. ns/op is per batch — divide by the
// batch size for per-sample cost. Two custom metrics expose the aperture
// packing and spectrum-arena wins directly (both are zero on the direct,
// non-tiled path, which issues no modeled JTC shots):
//
//   - shots/sample: modeled JTC shots per sample (packed schedule);
//   - ktransforms/sample: kernel-tile spectra built per sample (plan-time
//     latching makes this ~0 in steady state).
func BenchmarkNetForwardBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	nets := []struct {
		name  string
		build func() *nn.Network
	}{
		{"smallcnn", func() *nn.Network { return nn.SmallCNN([2]int{8, 16}, 10, 7) }},
		{"alexnets", func() *nn.Network { return nn.AlexNetS(10, 7) }},
	}
	for _, nc := range nets {
		net := nc.build()
		for _, batch := range []int{1, 8, 32} {
			x := tensor.New(batch, 3, 32, 32)
			x.RandN(rng, 1)
			b.Run(fmt.Sprintf("%s/batch%d", nc.name, batch), func(b *testing.B) {
				plan, err := net.Compile(benchOpen(b))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := plan.ForwardBatch(x); err != nil { // warm geometry + pools
					b.Fatal(err)
				}
				shots0, kt0 := jtc.Shots(), tiling.KernelTileTransforms()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := plan.ForwardBatch(x); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				samples := float64(b.N * batch)
				b.ReportMetric(float64(jtc.Shots()-shots0)/samples, "shots/sample")
				b.ReportMetric(float64(tiling.KernelTileTransforms()-kt0)/samples, "ktransforms/sample")
			})
		}
	}
}
