package photofourier

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"photofourier/internal/backend"
	"photofourier/internal/nn"
	"photofourier/internal/pool"
	"photofourier/internal/tensor"
)

// benchPoolDevice selects the per-device spec the pool-scaling benchmark
// replicates. The default is the paper's tiled accelerator operating point
// (the spec BENCH_7.json records); scripts/bench.sh can override it via
// PF_BENCH_POOL_DEVICE.
func benchPoolDevice() string {
	if spec := os.Getenv("PF_BENCH_POOL_DEVICE"); spec != "" {
		return spec
	}
	return "accelerator?tiled=true,workers=1"
}

// BenchmarkPoolForwardBatch measures batch-32 inference sharded across a
// DevicePool at pool sizes 1, 2, 4, and 8, plus a size-4 run with one
// device on a permanent outage (BENCH_7.json). Two throughput views:
//
//   - ns/op: wall-clock per 32-sample batch. On a single-CPU host the
//     shard goroutines time-share one core, so this measures scheduling
//     overhead on top of serial execution — it stays roughly flat across
//     pool sizes (it cannot show device parallelism, and per-device
//     wall-clock occupancy is equally confounded by the time-slicing);
//   - modeled-ns/sample: serial per-sample device cost x the largest
//     sample share the pool scheduler actually assigned to any one
//     device. Each pool device is modeled as an independent physical
//     accelerator whose per-sample cost is measured serially on an
//     identical single engine; a request's makespan is then the busiest
//     device's share. Sharding decisions (shard counts, retries, the
//     load skew a quarantined device causes) come from the real
//     scheduler — only the device parallelism is modeled. Near-ideal
//     scaling means this falls ~linearly with live devices.
//
// The outage variant shows graceful degradation: the dead device is
// quarantined after its first shard, the remaining three absorb the load,
// and every request still completes (throughput lands near the 3-device
// point, not at zero).
func BenchmarkPoolForwardBatch(b *testing.B) {
	const batch = 32
	dev := benchPoolDevice()
	cases := []struct {
		name string
		spec string
	}{
		{"pool1", fmt.Sprintf("pool?quarantine=1,devices=%s*1", dev)},
		{"pool2", fmt.Sprintf("pool?quarantine=1,devices=%s*2", dev)},
		{"pool4", fmt.Sprintf("pool?quarantine=1,devices=%s*4", dev)},
		{"pool8", fmt.Sprintf("pool?quarantine=1,devices=%s*8", dev)},
		{"pool4-outage", fmt.Sprintf(
			"pool?quarantine=1,devices=%s*3|%s,fault=outage:1,faultseed=3", dev, dev)},
	}
	rng := rand.New(rand.NewSource(44))
	x := tensor.New(batch, 3, 32, 32)
	x.RandN(rng, 1)
	serialNs := serialSampleCost(b, dev, x, batch)
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			net := nn.SmallCNN([2]int{8, 16}, 10, 7)
			p, err := pool.Open(net, tc.spec)
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			if _, err := p.ForwardBatch(x); err != nil { // warm + trip any outage
				b.Fatal(err)
			}
			samples0 := deviceSamples(p)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.ForwardBatch(x); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			maxShare := 0.0
			for i, row := range p.DeviceHealth() {
				if share := float64(row.Samples-samples0[i]) / float64(b.N); share > maxShare {
					maxShare = share
				}
			}
			b.ReportMetric(serialNs*maxShare/batch, "modeled-ns/sample")
			b.ReportMetric(float64(p.Live()), "live-devices")
		})
	}
}

// serialSampleCost measures the per-sample cost of one device spec run
// serially — the physical-device cost the pool-scaling model multiplies by
// each device's scheduled share.
func serialSampleCost(b *testing.B, spec string, x *tensor.Tensor, batch int) float64 {
	b.Helper()
	eng, err := backend.Open(spec)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := nn.SmallCNN([2]int{8, 16}, 10, 7).Compile(eng)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := plan.ForwardBatch(x); err != nil { // warm geometry + pools
		b.Fatal(err)
	}
	const reps = 3
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := plan.ForwardBatch(x); err != nil {
			b.Fatal(err)
		}
	}
	return float64(time.Since(start)) / float64(reps*batch)
}

func deviceSamples(p *pool.DevicePool) []uint64 {
	rows := p.DeviceHealth()
	samples := make([]uint64, len(rows))
	for i, row := range rows {
		samples[i] = row.Samples
	}
	return samples
}
