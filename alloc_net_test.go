package photofourier

import (
	"math/rand"
	"testing"

	"photofourier/internal/backend"
	"photofourier/internal/nn"
	"photofourier/internal/tensor"
)

// TestForwardBatchSteadyStateAllocs pins the allocation-free steady state of
// the batch-major tiled path: after one warm-up batch has populated the
// geometry caches and scratch pools, a ForwardBatch of SmallCNN at batch 8
// must stay within a handful of allocations — the returned logits tensor the
// caller retains (struct, shape, data) plus the per-call batch context.
// Workers are pinned to 1 so the measurement excludes goroutine machinery
// and is deterministic across hosts.
func TestForwardBatchSteadyStateAllocs(t *testing.T) {
	const maxAllocs = 8
	e, err := backend.Open("accelerator?tiled=true,workers=1")
	if err != nil {
		t.Fatal(err)
	}
	net := nn.SmallCNN([2]int{8, 16}, 10, 7)
	plan, err := net.Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	plan.Parallelism = 1
	rng := rand.New(rand.NewSource(11))
	x := tensor.New(8, 3, 32, 32)
	x.RandN(rng, 1)
	if _, err := plan.ForwardBatch(x); err != nil { // warm geometry + pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := plan.ForwardBatch(x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > maxAllocs {
		t.Errorf("ForwardBatch steady state allocates %.1f/op, want <= %d", allocs, maxAllocs)
	}
}
