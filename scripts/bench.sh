#!/usr/bin/env sh
# bench.sh — run the engine benchmarks and emit perf-trajectory snapshots:
#
#   BENCH_2.json  planned vs. unplanned Engine.Conv2D (layer-level compiled
#                 inference, PR 2)
#   BENCH_3.json  whole-network compiled inference: NetworkPlan /
#                 InferenceSession vs. the uncompiled per-sample path, plus
#                 the evaluation workload (logits-once batched vs. the old
#                 double-forward sweep) (PR 3)
#   BENCH_5.json  batch-major per-sample-exact inference (ForwardBatch):
#                 SmallCNN + AlexNetS at batch {1,8,32}, plus packed-shot
#                 accounting on the tiled spec — jtc.Shots() and
#                 tiling.KernelTileTransforms() deltas recorded per sample,
#                 so packing wins show up as shot-count reductions, not
#                 just ns/op (PR 5)
#   BENCH_8.json  lockstep batched-FFT tiled inference (PR 8): the full
#                 tiled path (spectrum-arena transforms + SoA convolve)
#                 after the lockstep rewire — SmallCNN + AlexNetS at batch
#                 {1,8,32} on the tiled spec with ns/sample, allocs/op,
#                 shots/sample, and ktransforms/sample, plus the speedup
#                 against the recorded pre-lockstep tiled baseline and the
#                 kernel environment (GOAMD64, lockstep width, asm kernels)
#   BENCH_7.json  device-pool sharded inference (DevicePool.ForwardBatch):
#                 batch-32 SmallCNN across pool sizes {1,2,4,8} on the
#                 tiled spec, plus a 4-device pool with one device on a
#                 permanent outage. The scaling claim is made on the
#                 modeled-ns/sample metric (serial device cost x largest
#                 scheduled share — device parallelism modeled, scheduling
#                 real), because on a starved host wall-clock serializes
#                 the shards and cannot show device parallelism (PR 7)
#   BENCH_10.json intra-sample pool parallelism (PR 10): AlexNetS batch-1
#                 latency under output-channel sharding and layer-stage
#                 pipelining at pool {2,4} vs a single device. The claim is
#                 made on modeled-ns/sample (measured serial batch-1 cost x
#                 the busiest device's share under the scheduler's real
#                 partitioner) and modeled-speedup (1/maxShare), with the
#                 arch performance model's conv time as the
#                 modeled-vs-scheduled comparison column
#   BENCH_9.json  fleet simulation (internal/sim, PR 9): the device-outage
#                 headline scenario — 32 diurnal tenants on a 4-device pool
#                 with one permanent mid-run outage — at pool {1,4}, outage
#                 vs clean. Records each run summary (latency percentiles,
#                 shed rate, shots/s, quarantine activity, SLO verdict);
#                 fully deterministic (virtual clock, seeded), so the
#                 snapshot is a reproducible artifact, not a sample
#
# Usage: scripts/bench.sh [snapshot...]     # e.g. scripts/bench.sh 8
#   default regenerates only snapshot 8; pass "2 3 5 7 8 9" or "all" to
#   regenerate older ones too.
#   BENCHTIME=5s scripts/bench.sh           # longer sampling
#   SPEC="accelerator-noisy?nta=8" scripts/bench.sh 3   # engine spec for the
#       net-level snapshot (recorded in the JSON; default "accelerator")
#   TILEDSPEC="accelerator?tiled=true" scripts/bench.sh 5   # spec for the
#       BENCH_5 shot-accounting pass
#   POOLSPEC="accelerator?tiled=true,workers=1" scripts/bench.sh 7   # the
#       per-device spec the BENCH_7 pool replicates
#   SIMDUR=30s scripts/bench.sh 9           # shorter virtual horizon for the
#       BENCH_9 simulation runs (default: the scenario's 120s)
#   OUT2=/tmp/b2.json OUT3=/tmp/b3.json OUT5=/tmp/b5.json OUT7=/tmp/b7.json \
#       OUT9=/tmp/b9.json OUT10=/tmp/b10.json scripts/bench.sh all
set -eu
cd "$(dirname "$0")/.."
benchtime="${BENCHTIME:-2s}"
spec="${SPEC:-accelerator}"
tiledspec="${TILEDSPEC:-accelerator?tiled=true}"
poolspec="${POOLSPEC:-accelerator?tiled=true,workers=1}"

usage() {
	echo "usage: scripts/bench.sh [snapshot...]" >&2
	echo "  snapshots: 2 3 5 7 8 9 10, or \"all\" (default: 8)" >&2
	exit 2
}

# No args defaults to snapshot 8; an explicitly empty/blank argument is an
# error, not a silent default.
if [ "$#" -gt 0 ]; then
	targets="$*"
else
	targets="8"
fi
[ "$targets" = "all" ] && targets="2 3 5 7 8 9 10"
nvalid=0
for t in $targets; do
	case "$t" in
	2 | 3 | 5 | 7 | 8 | 9 | 10) nvalid=$((nvalid + 1)) ;;
	*)
		echo "bench.sh: unknown snapshot \"$t\"" >&2
		usage
		;;
	esac
done
[ "$nvalid" -gt 0 ] || usage

# fault_of extracts the fault= injector parameter of an engine spec ("" when
# the spec is fault-free) — every snapshot records it as fault_spec.
fault_of() {
	case "$1" in
	*fault=*) f="${1#*fault=}" && printf '%s' "${f%%,*}" ;;
	*) printf '' ;;
	esac
}

want() {
	for t in $targets; do
		[ "$t" = "$1" ] && return 0
	done
	return 1
}

if want 2; then
	out="${OUT2:-BENCH_2.json}"
	raw=$(go test -run '^$' -bench 'EngineUnplannedConv|EnginePlannedConv' \
		-benchmem -benchtime "$benchtime" .)
	printf '%s\n' "$raw"

	printf '%s\n' "$raw" | awk -v benchtime="$benchtime" '
	/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
	/^BenchmarkEngine(Unplanned|Planned)Conv\// {
		split($1, parts, "/")
		kind = (parts[1] ~ /Unplanned/) ? "unplanned" : "planned"
		wl = parts[2]
		sub(/-[0-9]+$/, "", wl)
		ns[wl "," kind] = $3
		bytes[wl "," kind] = $5
		allocs[wl "," kind] = $7
		if (!(wl in seen)) { order[++n] = wl; seen[wl] = 1 }
	}
	END {
		printf "{\n"
		printf "  \"id\": \"BENCH_2\",\n"
		printf "  \"benchmark\": \"Engine.Conv2D repeated-batch: planned (LayerPlan) vs unplanned\",\n"
		printf "  \"engine_spec\": \"accelerator (planned) vs unplanned (baseline), plus per-workload params\",\n"
		printf "  \"cpu\": \"%s\",\n", cpu
		printf "  \"benchtime\": \"%s\",\n", benchtime
		printf "  \"workloads\": {\n"
		for (i = 1; i <= n; i++) {
			wl = order[i]
			printf "    \"%s\": {\n", wl
			printf "      \"unplanned\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", \
				ns[wl ",unplanned"], bytes[wl ",unplanned"], allocs[wl ",unplanned"]
			printf "      \"planned\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", \
				ns[wl ",planned"], bytes[wl ",planned"], allocs[wl ",planned"]
			printf "      \"speedup\": %.2f,\n", ns[wl ",unplanned"] / ns[wl ",planned"]
			printf "      \"alloc_reduction\": %.2f\n", allocs[wl ",unplanned"] / allocs[wl ",planned"]
			printf "    }%s\n", (i < n) ? "," : ""
		}
		printf "  }\n"
		printf "}\n"
	}' >"$out"
	echo "wrote $out"
fi

if want 3; then
	out="${OUT3:-BENCH_3.json}"
	raw=$(PF_BENCH_ENGINE="$spec" go test -run '^$' \
		-bench '^BenchmarkNetInference$|^BenchmarkNetEvaluate$' \
		-benchmem -benchtime "$benchtime" .)
	printf '%s\n' "$raw"

	printf '%s\n' "$raw" | awk -v benchtime="$benchtime" -v spec="$spec" \
		-v fault="$(fault_of "$spec")" '
	/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
	/^BenchmarkNet(Inference|Evaluate)\// {
		split($1, parts, "/")
		grp = (parts[1] ~ /Inference/) ? "forward" : "evaluate"
		wl = parts[2]
		sub(/-[0-9]+$/, "", wl)
		ns[grp "," wl] = $3
		bytes[grp "," wl] = $5
		allocs[grp "," wl] = $7
	}
	function row(grp, wl, div,   n) {
		n = ns[grp "," wl]
		printf "      \"ns_per_op\": %s, \"ns_per_sample\": %.0f, \"bytes_per_op\": %s, \"allocs_per_op\": %s\n", \
			n, n / div, bytes[grp "," wl], allocs[grp "," wl]
	}
	END {
		fu = ns["forward,uncompiled-per-sample"]
		eu = ns["evaluate,per-sample-double-forward"]
		printf "{\n"
		printf "  \"id\": \"BENCH_3\",\n"
		printf "  \"benchmark\": \"whole-network compiled inference (SmallCNN 3x32x32): NetworkPlan + InferenceSession vs uncompiled per-sample\",\n"
		printf "  \"engine_spec\": \"%s\",\n", spec
		printf "  \"pool_size\": 1,\n"
		printf "  \"fault_spec\": \"%s\",\n", fault
		printf "  \"cpu\": \"%s\",\n", cpu
		printf "  \"benchtime\": \"%s\",\n", benchtime
		printf "  \"forward\": {\n"
		printf "    \"uncompiled_per_sample\": {\n"; row("forward", "uncompiled-per-sample", 1); printf "    },\n"
		printf "    \"compiled_per_sample\": {\n"; row("forward", "compiled-per-sample", 1); printf "    },\n"
		printf "    \"compiled_batch8\": {\n"; row("forward", "compiled-batch8", 8); printf "    },\n"
		printf "    \"session_batch8\": {\n"; row("forward", "session-batch8", 1); printf "    },\n"
		printf "    \"compiled_speedup\": %.2f,\n", fu / ns["forward,compiled-per-sample"]
		printf "    \"batched_speedup\": %.2f,\n", fu / (ns["forward,compiled-batch8"] / 8)
		printf "    \"session_speedup\": %.2f\n", fu / ns["forward,session-batch8"]
		printf "  },\n"
		printf "  \"evaluate\": {\n"
		printf "    \"per_sample_double_forward\": {\n"; row("evaluate", "per-sample-double-forward", 1); printf "    },\n"
		printf "    \"compiled_batch8\": {\n"; row("evaluate", "compiled-batch8", 8); printf "    },\n"
		printf "    \"throughput_speedup\": %.2f\n", eu / (ns["evaluate,compiled-batch8"] / 8)
		printf "  }\n"
		printf "}\n"
	}' >"$out"
	echo "wrote $out"
fi

if want 5; then
	out="${OUT5:-BENCH_5.json}"
	raw=$(PF_BENCH_ENGINE="$spec" go test -run '^$' \
		-bench '^BenchmarkNetForwardBatch$' \
		-benchmem -benchtime "$benchtime" .)
	printf '%s\n' "$raw"

	# Packed-shot accounting on the tiled spec: shot counts per op are
	# deterministic, so a couple of iterations suffice.
	rawshots=$(PF_BENCH_ENGINE="$tiledspec" go test -run '^$' \
		-bench '^BenchmarkNetForwardBatch$/.*/^batch[18]$' \
		-benchtime 2x .)
	printf '%s\n' "$rawshots"

	# BENCH_3's recorded compiled-batch8 per-sample cost is the baseline the
	# acceptance ratio is computed against.
	bench3=$(awk '/"compiled_batch8"/{f=1} f&&/ns_per_sample/{match($0, /"ns_per_sample": [0-9]+/); s=substr($0, RSTART+17, RLENGTH-17); print s+0; exit}' BENCH_3.json 2>/dev/null)
	[ -n "$bench3" ] || bench3=0

	{
		printf '%s\n' "$raw"
		printf 'SHOTS %s\n' ""
		printf '%s\n' "$rawshots"
	} | awk -v benchtime="$benchtime" -v spec="$spec" -v tiledspec="$tiledspec" \
		-v bench3="$bench3" -v fault="$(fault_of "$spec")" '
	/^SHOTS/ { shots_section = 1; next }
	/^cpu:/ { if (!cpu) { sub(/^cpu: */, ""); cpu = $0 } }
	/^BenchmarkNetForwardBatch\// {
		split($1, parts, "/")
		net = parts[2]
		wl = parts[3]
		sub(/-[0-9]+$/, "", wl)
		key = net "," wl
		for (i = 2; i < NF; i++) {
			if ($(i+1) == "ns/op") v_ns = $i
			else if ($(i+1) == "shots/sample") v_sh = $i
			else if ($(i+1) == "ktransforms/sample") v_kt = $i
			else if ($(i+1) == "B/op") v_b = $i
			else if ($(i+1) == "allocs/op") v_al = $i
		}
		if (shots_section) {
			tshots[key] = v_sh
			tkt[key] = v_kt
		} else {
			ns[key] = v_ns
			bytes[key] = v_b
			allocs[key] = v_al
			if (!(net in seenNet)) { netOrder[++nn2] = net; seenNet[net] = 1 }
		}
	}
	function div_of(wl) { sub(/batch/, "", wl); return wl + 0 }
	END {
		printf "{\n"
		printf "  \"id\": \"BENCH_5\",\n"
		printf "  \"benchmark\": \"batch-major per-sample-exact inference (NetworkPlan.ForwardBatch): SmallCNN + AlexNetS, batch {1,8,32}\",\n"
		printf "  \"engine_spec\": \"%s\",\n", spec
		printf "  \"pool_size\": 1,\n"
		printf "  \"fault_spec\": \"%s\",\n", fault
		printf "  \"tiled_spec\": \"%s\",\n", tiledspec
		printf "  \"cpu\": \"%s\",\n", cpu
		printf "  \"benchtime\": \"%s\",\n", benchtime
		printf "  \"forward_batch\": {\n"
		for (i = 1; i <= nn2; i++) {
			net = netOrder[i]
			printf "    \"%s\": {\n", net
			first = 1
			split("1 8 32", sizes, " ")
			for (si = 1; si <= 3; si++) {
				bsz = sizes[si]
				wl = "batch" bsz
				key = net "," wl
				if (!(key in ns)) continue
				if (!first) printf ",\n"
				first = 0
				printf "      \"%s\": {\"ns_per_op\": %s, \"ns_per_sample\": %.0f, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
					wl, ns[key], ns[key] / bsz, bytes[key], allocs[key]
			}
			printf "\n    }%s\n", (i < nn2) ? "," : ""
		}
		printf "  },\n"
		printf "  \"bench3_compiled_batch8_ns_per_sample\": %s,\n", bench3
		if (bench3 > 0 && ("smallcnn,batch8" in ns))
			printf "  \"smallcnn_batch8_speedup_vs_bench3\": %.2f,\n", bench3 / (ns["smallcnn,batch8"] / 8)
		printf "  \"tiled_packed_shots\": {\n"
		first = 1
		for (i = 1; i <= nn2; i++) {
			net = netOrder[i]
			k1 = net ",batch1"; k8 = net ",batch8"
			if (!(k1 in tshots) || !(k8 in tshots)) continue
			if (!first) printf ",\n"
			first = 0
			printf "    \"%s\": {\"batch1_shots_per_sample\": %s, \"batch8_shots_per_sample\": %s, \"shot_reduction\": %.3f, \"batch8_kernel_transforms_per_sample\": %s}", \
				net, tshots[k1], tshots[k8], 1 - tshots[k8] / tshots[k1], tkt[k8]
		}
		printf "\n  }\n"
		printf "}\n"
	}' >"$out"
	echo "wrote $out"
fi

if want 8; then
	out="${OUT8:-BENCH_8.json}"
	raw=$(PF_BENCH_ENGINE="$tiledspec" go test -run '^$' \
		-bench '^BenchmarkNetForwardBatch$' \
		-benchmem -benchtime "$benchtime" .)
	printf '%s\n' "$raw"

	# Pre-lockstep tiled baseline on the reference host (PR 7 tree,
	# accelerator?tiled=true, AlexNetS batch 8): 146977326 ns/op = 18372166
	# ns/sample. Host-dependent; the speedup field is meaningful only on
	# comparable hardware.
	baseline=18372166
	goamd64=$(go env GOAMD64)
	[ -n "$goamd64" ] || goamd64=v1

	printf '%s\n' "$raw" | awk -v benchtime="$benchtime" -v tiledspec="$tiledspec" \
		-v baseline="$baseline" -v goamd64="$goamd64" \
		-v fault="$(fault_of "$tiledspec")" '
	/^cpu:/ { if (!cpu) { sub(/^cpu: */, ""); cpu = $0 } }
	/^BenchmarkNetForwardBatch\// {
		split($1, parts, "/")
		net = parts[2]
		wl = parts[3]
		sub(/-[0-9]+$/, "", wl)
		key = net "," wl
		for (i = 2; i < NF; i++) {
			if ($(i+1) == "ns/op") v_ns = $i
			else if ($(i+1) == "shots/sample") v_sh = $i
			else if ($(i+1) == "ktransforms/sample") v_kt = $i
			else if ($(i+1) == "B/op") v_b = $i
			else if ($(i+1) == "allocs/op") v_al = $i
		}
		ns[key] = v_ns; sh[key] = v_sh; kt[key] = v_kt
		bytes[key] = v_b; allocs[key] = v_al
		if (!(net in seenNet)) { netOrder[++nn2] = net; seenNet[net] = 1 }
	}
	END {
		printf "{\n"
		printf "  \"id\": \"BENCH_8\",\n"
		printf "  \"benchmark\": \"lockstep batched-FFT tiled inference (NetworkPlan.ForwardBatch on the spectrum arena): SmallCNN + AlexNetS, batch {1,8,32}\",\n"
		printf "  \"engine_spec\": \"%s\",\n", tiledspec
		printf "  \"fault_spec\": \"%s\",\n", fault
		printf "  \"cpu\": \"%s\",\n", cpu
		printf "  \"benchtime\": \"%s\",\n", benchtime
		printf "  \"kernel_env\": {\"goamd64\": \"%s\", \"lockstep_width\": 8, \"asm_kernels\": \"SSE2 packed 2-lane butterflies (fused first/pair/final2, bitrev swap, inv normalize, rfft/irfft recomb, gather-mul)\"},\n", goamd64
		printf "  \"forward_batch\": {\n"
		for (i = 1; i <= nn2; i++) {
			net = netOrder[i]
			printf "    \"%s\": {\n", net
			first = 1
			split("1 8 32", sizes, " ")
			for (si = 1; si <= 3; si++) {
				bsz = sizes[si]
				wl = "batch" bsz
				key = net "," wl
				if (!(key in ns)) continue
				if (!first) printf ",\n"
				first = 0
				printf "      \"%s\": {\"ns_per_op\": %s, \"ns_per_sample\": %.0f, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"shots_per_sample\": %s, \"ktransforms_per_sample\": %s}", \
					wl, ns[key], ns[key] / bsz, bytes[key], allocs[key], sh[key], kt[key]
			}
			printf "\n    }%s\n", (i < nn2) ? "," : ""
		}
		printf "  },\n"
		printf "  \"baseline_tiled_alexnets_batch8_ns_per_sample\": %s,\n", baseline
		if ("alexnets,batch8" in ns)
			printf "  \"alexnets_batch8_speedup_vs_baseline\": %.2f,\n", baseline / (ns["alexnets,batch8"] / 8)
		if ("smallcnn,batch8" in ns)
			printf "  \"smallcnn_batch8_steady_state_allocs_per_op\": %s\n", allocs["smallcnn,batch8"]
		printf "}\n"
	}' >"$out"
	echo "wrote $out"
fi

if want 7; then
	out="${OUT7:-BENCH_7.json}"
	raw=$(PF_BENCH_POOL_DEVICE="$poolspec" go test -run '^$' \
		-bench '^BenchmarkPoolForwardBatch$' \
		-benchmem -benchtime "$benchtime" .)
	printf '%s\n' "$raw"

	printf '%s\n' "$raw" | awk -v benchtime="$benchtime" -v poolspec="$poolspec" '
	/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
	/^BenchmarkPoolForwardBatch\// {
		split($1, parts, "/")
		wl = parts[2]
		sub(/-[0-9]+$/, "", wl)
		for (i = 2; i < NF; i++) {
			if ($(i+1) == "ns/op") v_ns = $i
			else if ($(i+1) == "modeled-ns/sample") v_mod = $i
			else if ($(i+1) == "live-devices") v_live = $i
			else if ($(i+1) == "B/op") v_b = $i
			else if ($(i+1) == "allocs/op") v_al = $i
		}
		ns[wl] = v_ns; mod[wl] = v_mod; live[wl] = v_live
		bytes[wl] = v_b; allocs[wl] = v_al
		if (!(wl in seen)) { order[++n] = wl; seen[wl] = 1 }
	}
	function size_of(wl) { sub(/^pool/, "", wl); sub(/-outage$/, "", wl); return wl + 0 }
	END {
		printf "{\n"
		printf "  \"id\": \"BENCH_7\",\n"
		printf "  \"benchmark\": \"device-pool sharded inference (DevicePool.ForwardBatch): SmallCNN batch 32 at pool sizes {1,2,4,8} + 4-device pool with one permanent outage\",\n"
		printf "  \"device_spec\": \"%s\",\n", poolspec
		printf "  \"batch\": 32,\n"
		printf "  \"cpu\": \"%s\",\n", cpu
		printf "  \"benchtime\": \"%s\",\n", benchtime
		printf "  \"metric_note\": \"modeled_ns_per_sample = serial per-device cost x largest sample share the pool scheduler assigned to any device; wall-clock shard execution serializes on a single-CPU host, so ns_per_op cannot show device parallelism\",\n"
		printf "  \"pools\": {\n"
		for (i = 1; i <= n; i++) {
			wl = order[i]
			fault = (wl ~ /outage/) ? "outage:1" : ""
			printf "    \"%s\": {\"pool_size\": %d, \"fault_spec\": \"%s\", \"live_devices\": %d, \"ns_per_op\": %s, \"wall_ns_per_sample\": %.0f, \"modeled_ns_per_sample\": %.0f, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
				wl, size_of(wl), fault, live[wl] + 0, ns[wl], ns[wl] / 32, mod[wl], bytes[wl], allocs[wl], (i < n) ? "," : ""
		}
		printf "  },\n"
		printf "  \"modeled_speedup_pool2_vs_pool1\": %.2f,\n", mod["pool1"] / mod["pool2"]
		printf "  \"modeled_speedup_pool4_vs_pool1\": %.2f,\n", mod["pool1"] / mod["pool4"]
		printf "  \"modeled_speedup_pool8_vs_pool1\": %.2f,\n", mod["pool1"] / mod["pool8"]
		printf "  \"outage_modeled_speedup_vs_pool1\": %.2f\n", mod["pool1"] / mod["pool4-outage"]
		printf "}\n"
	}' >"$out"
	echo "wrote $out"
fi

if want 10; then
	out="${OUT10:-BENCH_10.json}"
	raw=$(PF_BENCH_POOL_DEVICE="$poolspec" go test -run '^$' \
		-bench '^BenchmarkIntraBatch1$' \
		-benchmem -benchtime "$benchtime" .)
	printf '%s\n' "$raw"

	printf '%s\n' "$raw" | awk -v benchtime="$benchtime" -v poolspec="$poolspec" '
	/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
	/^BenchmarkIntraBatch1\// {
		split($1, parts, "/")
		wl = parts[2]
		sub(/-[0-9]+$/, "", wl)
		for (i = 2; i < NF; i++) {
			if ($(i+1) == "ns/op") v_ns = $i
			else if ($(i+1) == "modeled-ns/sample") v_mod = $i
			else if ($(i+1) == "modeled-speedup") v_sp = $i
			else if ($(i+1) == "arch-ns/sample") v_arch = $i
			else if ($(i+1) == "live-devices") v_live = $i
			else if ($(i+1) == "B/op") v_b = $i
			else if ($(i+1) == "allocs/op") v_al = $i
		}
		ns[wl] = v_ns; mod[wl] = v_mod; sp[wl] = v_sp
		arch[wl] = v_arch; live[wl] = v_live
		bytes[wl] = v_b; allocs[wl] = v_al
		if (!(wl in seen)) { order[++n] = wl; seen[wl] = 1 }
	}
	function shard_of(wl) { return (wl ~ /^channel/) ? "channel" : (wl ~ /^pipeline/) ? "pipeline" : "sample" }
	function size_of(wl) { sub(/^[a-z]+/, "", wl); return (wl == "") ? 1 : wl + 0 }
	END {
		printf "{\n"
		printf "  \"id\": \"BENCH_10\",\n"
		printf "  \"benchmark\": \"intra-sample pool parallelism (DevicePool shard=channel|pipeline): AlexNetS batch-1 latency at pool {2,4} vs a single device\",\n"
		printf "  \"device_spec\": \"%s\",\n", poolspec
		printf "  \"batch\": 1,\n"
		printf "  \"cpu\": \"%s\",\n", cpu
		printf "  \"benchtime\": \"%s\",\n", benchtime
		printf "  \"metric_note\": \"modeled_batch1_ns_per_sample = measured serial single-device batch-1 cost x the busiest device share under the scheduler real partitioner (SplitChannels / StageBounds over arch step costs); wall-clock shard execution serializes on a single-CPU host, so ns_per_op cannot show device parallelism. arch_ns_per_sample is the arch performance model conv time for the same plan geometry, the modeled-vs-scheduled comparison column\",\n"
		printf "  \"strategies\": {\n"
		for (i = 1; i <= n; i++) {
			wl = order[i]
			printf "    \"%s\": {\"shard\": \"%s\", \"pool_size\": %d, \"live_devices\": %d, \"ns_per_op\": %s, \"modeled_batch1_ns_per_sample\": %.0f, \"modeled_speedup\": %.3f, \"arch_ns_per_sample\": %.1f, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
				wl, shard_of(wl), size_of(wl), live[wl] + 0, ns[wl], mod[wl], sp[wl], arch[wl], bytes[wl], allocs[wl], (i < n) ? "," : ""
		}
		printf "  },\n"
		printf "  \"modeled_speedup_channel2\": %.3f,\n", mod["single"] / mod["channel2"]
		printf "  \"modeled_speedup_channel4\": %.3f,\n", mod["single"] / mod["channel4"]
		printf "  \"modeled_speedup_pipeline2\": %.3f,\n", mod["single"] / mod["pipeline2"]
		printf "  \"modeled_speedup_pipeline4\": %.3f\n", mod["single"] / mod["pipeline4"]
		printf "}\n"
	}' >"$out"
	echo "wrote $out"
fi

if want 9; then
	out="${OUT9:-BENCH_9.json}"
	simdur="${SIMDUR:-}"
	durflag=""
	[ -n "$simdur" ] && durflag="-sim-duration $simdur"
	# Three deterministic runs of the headline scenario: single clean worker,
	# the full 4-worker fleet clean, and the fleet with its mid-run outage.
	# $durflag is intentionally unquoted: empty expands to no flag.
	# shellcheck disable=SC2086
	pool1=$(go run ./cmd/photofourier -sim device-outage -sim-json -sim-pool 1 -sim-chaos=false $durflag)
	# shellcheck disable=SC2086
	clean4=$(go run ./cmd/photofourier -sim device-outage -sim-json -sim-chaos=false $durflag)
	# shellcheck disable=SC2086
	outage4=$(go run ./cmd/photofourier -sim device-outage -sim-json $durflag)
	printf 'pool1 clean:  %s\n' "$pool1"
	printf 'pool4 clean:  %s\n' "$clean4"
	printf 'pool4 outage: %s\n' "$outage4"

	# field NAME JSON — pull a scalar out of a one-line summary.
	field() {
		printf '%s' "$2" | awk -v key="\"$1\":" '{
			i = index($0, key)
			if (!i) { print 0; exit }
			s = substr($0, i + length(key))
			sub(/[,}].*/, "", s)
			print s + 0
		}'
	}

	p991=$(field p99_ns "$pool1")
	p99c=$(field p99_ns "$clean4")
	p99o=$(field p99_ns "$outage4")
	{
		printf '{\n'
		printf '  "id": "BENCH_9",\n'
		printf '  "benchmark": "fleet simulation (internal/sim): device-outage headline scenario, 32 diurnal tenants, pool {1,4}, outage vs clean",\n'
		printf '  "scenario": "device-outage",\n'
		printf '  "sim_duration_override": "%s",\n' "$simdur"
		printf '  "pool1_clean": %s,\n' "$pool1"
		printf '  "pool4_clean": %s,\n' "$clean4"
		printf '  "pool4_outage": %s,\n' "$outage4"
		awk -v p1="$p991" -v c="$p99c" -v o="$p99o" 'BEGIN {
			printf "  \"pool4_vs_pool1_p99_speedup\": %.2f,\n", (c > 0) ? p1 / c : 0
			printf "  \"outage_vs_clean_p99_ratio\": %.3f\n", (c > 0) ? o / c : 0
		}'
		printf '}\n'
	} >"$out"
	echo "wrote $out"
fi
