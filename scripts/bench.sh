#!/usr/bin/env sh
# bench.sh — run the engine benchmarks and emit BENCH_2.json: ns/op and
# allocs/op for the planned vs. unplanned Engine.Conv2D repeated-batch
# workloads, plus the derived speedup/alloc ratios. This file starts the
# perf trajectory; future PRs append BENCH_<n>.json snapshots.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=5s scripts/bench.sh     # longer sampling
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_2.json}"
benchtime="${BENCHTIME:-2s}"

raw=$(go test -run '^$' -bench 'EngineUnplannedConv|EnginePlannedConv' \
	-benchmem -benchtime "$benchtime" .)
printf '%s\n' "$raw"

printf '%s\n' "$raw" | awk -v benchtime="$benchtime" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^BenchmarkEngine(Unplanned|Planned)Conv\// {
	split($1, parts, "/")
	kind = (parts[1] ~ /Unplanned/) ? "unplanned" : "planned"
	wl = parts[2]
	sub(/-[0-9]+$/, "", wl)
	ns[wl "," kind] = $3
	bytes[wl "," kind] = $5
	allocs[wl "," kind] = $7
	if (!(wl in seen)) { order[++n] = wl; seen[wl] = 1 }
}
END {
	printf "{\n"
	printf "  \"id\": \"BENCH_2\",\n"
	printf "  \"benchmark\": \"Engine.Conv2D repeated-batch: planned (LayerPlan) vs unplanned\",\n"
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"workloads\": {\n"
	for (i = 1; i <= n; i++) {
		wl = order[i]
		printf "    \"%s\": {\n", wl
		printf "      \"unplanned\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", \
			ns[wl ",unplanned"], bytes[wl ",unplanned"], allocs[wl ",unplanned"]
		printf "      \"planned\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", \
			ns[wl ",planned"], bytes[wl ",planned"], allocs[wl ",planned"]
		printf "      \"speedup\": %.2f,\n", ns[wl ",unplanned"] / ns[wl ",planned"]
		printf "      \"alloc_reduction\": %.2f\n", allocs[wl ",unplanned"] / allocs[wl ",planned"]
		printf "    }%s\n", (i < n) ? "," : ""
	}
	printf "  }\n"
	printf "}\n"
}' >"$out"

echo "wrote $out"
