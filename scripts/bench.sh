#!/usr/bin/env sh
# bench.sh — run the engine benchmarks and emit perf-trajectory snapshots:
#
#   BENCH_2.json  planned vs. unplanned Engine.Conv2D (layer-level compiled
#                 inference, PR 2)
#   BENCH_3.json  whole-network compiled inference: NetworkPlan /
#                 InferenceSession vs. the uncompiled per-sample path, plus
#                 the evaluation workload (logits-once batched vs. the old
#                 double-forward sweep) (PR 3)
#
# Usage: scripts/bench.sh [snapshot...]     # e.g. scripts/bench.sh 3
#   default regenerates only the newest snapshot (3); pass "2 3" or "all"
#   to regenerate older ones too.
#   BENCHTIME=5s scripts/bench.sh           # longer sampling
#   SPEC="accelerator-noisy?nta=8" scripts/bench.sh 3   # engine spec for the
#       net-level snapshot (recorded in the JSON; default "accelerator")
#   OUT2=/tmp/b2.json OUT3=/tmp/b3.json scripts/bench.sh all   # alternate outputs
set -eu
cd "$(dirname "$0")/.."
benchtime="${BENCHTIME:-2s}"
spec="${SPEC:-accelerator}"
targets="${*:-3}"
[ "$targets" = "all" ] && targets="2 3"

want() {
	for t in $targets; do
		[ "$t" = "$1" ] && return 0
	done
	return 1
}

if want 2; then
	out="${OUT2:-BENCH_2.json}"
	raw=$(go test -run '^$' -bench 'EngineUnplannedConv|EnginePlannedConv' \
		-benchmem -benchtime "$benchtime" .)
	printf '%s\n' "$raw"

	printf '%s\n' "$raw" | awk -v benchtime="$benchtime" '
	/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
	/^BenchmarkEngine(Unplanned|Planned)Conv\// {
		split($1, parts, "/")
		kind = (parts[1] ~ /Unplanned/) ? "unplanned" : "planned"
		wl = parts[2]
		sub(/-[0-9]+$/, "", wl)
		ns[wl "," kind] = $3
		bytes[wl "," kind] = $5
		allocs[wl "," kind] = $7
		if (!(wl in seen)) { order[++n] = wl; seen[wl] = 1 }
	}
	END {
		printf "{\n"
		printf "  \"id\": \"BENCH_2\",\n"
		printf "  \"benchmark\": \"Engine.Conv2D repeated-batch: planned (LayerPlan) vs unplanned\",\n"
		printf "  \"engine_spec\": \"accelerator (planned) vs unplanned (baseline), plus per-workload params\",\n"
		printf "  \"cpu\": \"%s\",\n", cpu
		printf "  \"benchtime\": \"%s\",\n", benchtime
		printf "  \"workloads\": {\n"
		for (i = 1; i <= n; i++) {
			wl = order[i]
			printf "    \"%s\": {\n", wl
			printf "      \"unplanned\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", \
				ns[wl ",unplanned"], bytes[wl ",unplanned"], allocs[wl ",unplanned"]
			printf "      \"planned\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", \
				ns[wl ",planned"], bytes[wl ",planned"], allocs[wl ",planned"]
			printf "      \"speedup\": %.2f,\n", ns[wl ",unplanned"] / ns[wl ",planned"]
			printf "      \"alloc_reduction\": %.2f\n", allocs[wl ",unplanned"] / allocs[wl ",planned"]
			printf "    }%s\n", (i < n) ? "," : ""
		}
		printf "  }\n"
		printf "}\n"
	}' >"$out"
	echo "wrote $out"
fi

if want 3; then
	out="${OUT3:-BENCH_3.json}"
	raw=$(PF_BENCH_ENGINE="$spec" go test -run '^$' \
		-bench '^BenchmarkNetInference$|^BenchmarkNetEvaluate$' \
		-benchmem -benchtime "$benchtime" .)
	printf '%s\n' "$raw"

	printf '%s\n' "$raw" | awk -v benchtime="$benchtime" -v spec="$spec" '
	/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
	/^BenchmarkNet(Inference|Evaluate)\// {
		split($1, parts, "/")
		grp = (parts[1] ~ /Inference/) ? "forward" : "evaluate"
		wl = parts[2]
		sub(/-[0-9]+$/, "", wl)
		ns[grp "," wl] = $3
		bytes[grp "," wl] = $5
		allocs[grp "," wl] = $7
	}
	function row(grp, wl, div,   n) {
		n = ns[grp "," wl]
		printf "      \"ns_per_op\": %s, \"ns_per_sample\": %.0f, \"bytes_per_op\": %s, \"allocs_per_op\": %s\n", \
			n, n / div, bytes[grp "," wl], allocs[grp "," wl]
	}
	END {
		fu = ns["forward,uncompiled-per-sample"]
		eu = ns["evaluate,per-sample-double-forward"]
		printf "{\n"
		printf "  \"id\": \"BENCH_3\",\n"
		printf "  \"benchmark\": \"whole-network compiled inference (SmallCNN 3x32x32): NetworkPlan + InferenceSession vs uncompiled per-sample\",\n"
		printf "  \"engine_spec\": \"%s\",\n", spec
		printf "  \"cpu\": \"%s\",\n", cpu
		printf "  \"benchtime\": \"%s\",\n", benchtime
		printf "  \"forward\": {\n"
		printf "    \"uncompiled_per_sample\": {\n"; row("forward", "uncompiled-per-sample", 1); printf "    },\n"
		printf "    \"compiled_per_sample\": {\n"; row("forward", "compiled-per-sample", 1); printf "    },\n"
		printf "    \"compiled_batch8\": {\n"; row("forward", "compiled-batch8", 8); printf "    },\n"
		printf "    \"session_batch8\": {\n"; row("forward", "session-batch8", 1); printf "    },\n"
		printf "    \"compiled_speedup\": %.2f,\n", fu / ns["forward,compiled-per-sample"]
		printf "    \"batched_speedup\": %.2f,\n", fu / (ns["forward,compiled-batch8"] / 8)
		printf "    \"session_speedup\": %.2f\n", fu / ns["forward,session-batch8"]
		printf "  },\n"
		printf "  \"evaluate\": {\n"
		printf "    \"per_sample_double_forward\": {\n"; row("evaluate", "per-sample-double-forward", 1); printf "    },\n"
		printf "    \"compiled_batch8\": {\n"; row("evaluate", "compiled-batch8", 8); printf "    },\n"
		printf "    \"throughput_speedup\": %.2f\n", eu / (ns["evaluate,compiled-batch8"] / 8)
		printf "  }\n"
		printf "}\n"
	}' >"$out"
	echo "wrote $out"
fi
